// Binary serialization of trained NuevoMatch classifiers.
//
// Training an RQ-RMI takes seconds-to-minutes (paper Section 5.3.4); looking
// one up takes nanoseconds. Deployments therefore train offline and ship the
// weights — this module provides the wire format: a versioned, CRC-32
// protected encoding of the RQ-RMI stages, per-leaf error bounds, iSet rule
// arrays and the remainder rule-set. The remainder's external classifier is
// NOT serialized: it is rebuilt on load through the caller's factory, since
// external engines build in milliseconds and their in-memory layout is not a
// stable contract.
//
// Every load_* returns std::nullopt on any malformed input: truncated
// buffers, bad magic/version, CRC mismatch, or shape violations. Corrupted
// input can never produce a classifier that answers queries.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "nuevomatch/nuevomatch.hpp"
#include "rqrmi/model.hpp"

namespace nuevomatch::serialize {

inline constexpr uint32_t kFormatVersion = 1;

/// --- RQ-RMI model ----------------------------------------------------------
[[nodiscard]] std::vector<uint8_t> save_model(const rqrmi::RqRmi& model);
[[nodiscard]] std::optional<rqrmi::RqRmi> load_model(std::span<const uint8_t> bytes);

/// --- rule-sets --------------------------------------------------------------
[[nodiscard]] std::vector<uint8_t> save_rules(std::span<const Rule> rules);
[[nodiscard]] std::optional<RuleSet> load_rules(std::span<const uint8_t> bytes);

/// --- full classifier --------------------------------------------------------
/// Serialized: every iSet (field, rules, trained model) + remainder rules.
/// Contract: serialize freshly built (or rebuilt) classifiers. Rules erased
/// after the last (re)build are tombstones inside the iSet arrays and would
/// be resurrected by a round-trip — call rebuild() first if updates were
/// applied (matching the paper's periodic-retraining deployment, §3.9).
[[nodiscard]] std::vector<uint8_t> save_classifier(const NuevoMatch& nm);
/// `cfg` supplies the remainder factory (and runtime knobs); the trained
/// state comes from `bytes`.
[[nodiscard]] std::optional<NuevoMatch> load_classifier(std::span<const uint8_t> bytes,
                                                        NuevoMatchConfig cfg);

/// --- files -------------------------------------------------------------------
[[nodiscard]] bool write_file(const std::string& path, std::span<const uint8_t> bytes);
[[nodiscard]] std::optional<std::vector<uint8_t>> read_file(const std::string& path);

}  // namespace nuevomatch::serialize
