// Binary serialization of trained NuevoMatch classifiers.
//
// Training an RQ-RMI takes seconds-to-minutes (paper Section 5.3.4); looking
// one up takes nanoseconds. Deployments therefore train offline and ship the
// weights — this module provides the wire format: a versioned, CRC-32
// protected encoding of the RQ-RMI stages, per-leaf error bounds, iSet rule
// arrays and the remainder rule-set. The remainder's external classifier is
// NOT serialized: it is rebuilt on load through the caller's factory, since
// external engines build in milliseconds and their in-memory layout is not a
// stable contract.
//
// Every load_* returns std::nullopt on any malformed input: truncated
// buffers, bad magic/version, CRC mismatch, or shape violations. Corrupted
// input can never produce a classifier that answers queries.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "nuevomatch/nuevomatch.hpp"
#include "nuevomatch/online.hpp"
#include "rqrmi/model.hpp"

namespace nuevomatch::serialize {

/// v2 added the updatable state to classifier checkpoints: per-iSet
/// tombstone (dead-id) lists and the update-pressure counters, so a
/// classifier with pending remainder rules round-trips exactly. v3 makes the
/// online checkpoint shard-aware: save_online wraps the classifier body in
/// its own frame carrying the writer-shard count and per-shard applied-op
/// counters, so churn accounting survives a checkpoint — including across a
/// shard-count change (load redistributes, preserving the total). Version
/// mismatches are rejected outright — no compatibility shims until a
/// release has shipped artifacts worth migrating.
inline constexpr uint32_t kFormatVersion = 3;

/// --- RQ-RMI model ----------------------------------------------------------
[[nodiscard]] std::vector<uint8_t> save_model(const rqrmi::RqRmi& model);
[[nodiscard]] std::optional<rqrmi::RqRmi> load_model(std::span<const uint8_t> bytes);

/// --- rule-sets --------------------------------------------------------------
[[nodiscard]] std::vector<uint8_t> save_rules(std::span<const Rule> rules);
[[nodiscard]] std::optional<RuleSet> load_rules(std::span<const uint8_t> bytes);

/// --- full classifier --------------------------------------------------------
/// Serialized: every iSet (field, rules, trained model, dead ids) + remainder
/// rules (including rules migrated there by updates) + update-pressure
/// counters. A classifier with pending updates — tombstoned deletions and
/// rules absorbed by the remainder since the last (re)build — round-trips
/// exactly; rebuild() before saving is no longer required.
[[nodiscard]] std::vector<uint8_t> save_classifier(const NuevoMatch& nm);
/// `cfg` supplies the remainder factory (and runtime knobs); the trained
/// state comes from `bytes`.
[[nodiscard]] std::optional<NuevoMatch> load_classifier(std::span<const uint8_t> bytes,
                                                        NuevoMatchConfig cfg);

/// --- online classifier -------------------------------------------------------
/// Checkpoint the live view of an online classifier plus its sharded
/// update-path state (shard count and per-shard applied-op counters). The
/// classifier body is the epoch engine's *composed* stable view — the
/// frozen generation with the copy-on-write update layer folded back in
/// (churn inserts in the remainder rule-set, base-remainder deletions
/// dropped, iSet tombstones as v2 dead-id lists) — so the frame carries no
/// per-reader or per-layer runtime state and the v3 wire format is
/// unchanged from the rwlock-era encoder. Snapshots with writers excluded
/// (but without waiting out churn or an in-flight retrain — see
/// OnlineNuevoMatch::with_stable_view), so the bytes are a consistent view
/// and the call is bounded even under sustained updates.
[[nodiscard]] std::vector<uint8_t> save_online(const OnlineNuevoMatch& nm);
/// Restore into a fresh online classifier: the journals start empty, the
/// absorption and per-shard op counters resume where the checkpoint left
/// them (a different cfg.update_shards redistributes counts, preserving the
/// total — the id→shard map is recomputed from the hash anyway). Returns
/// nullptr on malformed input (the class is not movable, so this is the one
/// loader that hands back a pointer instead of an optional).
[[nodiscard]] std::unique_ptr<OnlineNuevoMatch> load_online(
    std::span<const uint8_t> bytes, OnlineConfig cfg);

/// --- files -------------------------------------------------------------------
[[nodiscard]] bool write_file(const std::string& path, std::span<const uint8_t> bytes);
[[nodiscard]] std::optional<std::vector<uint8_t>> read_file(const std::string& path);

}  // namespace nuevomatch::serialize
