// Minimal binary codec used by the model serializer: little-endian
// fixed-width integers, IEEE floats, length-prefixed buffers, and a CRC-32
// trailer. No allocations on the read path; readers fail soft (ok() turns
// false and every subsequent get returns zero) so corrupted input can never
// run the cursor out of bounds.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <string_view>
#include <vector>

namespace nuevomatch::serialize {

/// CRC-32 (IEEE 802.3, reflected) of a byte buffer.
[[nodiscard]] constexpr uint32_t crc32(std::span<const uint8_t> data) noexcept {
  uint32_t crc = 0xFFFF'FFFFu;
  for (uint8_t byte : data) {
    crc ^= byte;
    for (int k = 0; k < 8; ++k) crc = (crc >> 1) ^ (0xEDB8'8320u & (~(crc & 1u) + 1u));
  }
  return ~crc;
}

class ByteWriter {
 public:
  void put_u8(uint8_t v) { buf_.push_back(v); }
  void put_u32(uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
  void put_i32(int32_t v) { put_u32(std::bit_cast<uint32_t>(v)); }
  void put_u64(uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
  void put_f32(float v) { put_u32(std::bit_cast<uint32_t>(v)); }
  void put_f64(double v) { put_u64(std::bit_cast<uint64_t>(v)); }
  void put_bytes(std::span<const uint8_t> b) { buf_.insert(buf_.end(), b.begin(), b.end()); }
  void put_tag(std::string_view tag) {
    for (char c : tag) buf_.push_back(static_cast<uint8_t>(c));
  }

  /// Append the CRC-32 of everything written so far and return the buffer.
  [[nodiscard]] std::vector<uint8_t> finish() && {
    const uint32_t crc = crc32(buf_);
    put_u32(crc);
    return std::move(buf_);
  }

  [[nodiscard]] const std::vector<uint8_t>& bytes() const noexcept { return buf_; }
  [[nodiscard]] size_t size() const noexcept { return buf_.size(); }

 private:
  std::vector<uint8_t> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const uint8_t> data) : data_(data) {}

  /// Validate and strip the CRC-32 trailer before reading any fields.
  [[nodiscard]] bool check_crc() noexcept {
    if (data_.size() < 4) return fail();
    const auto body = data_.subspan(0, data_.size() - 4);
    ByteReader tail{data_.subspan(data_.size() - 4)};
    const uint32_t want = tail.get_u32();
    if (crc32(body) != want) return fail();
    data_ = body;
    return true;
  }

  [[nodiscard]] uint8_t get_u8() noexcept {
    if (pos_ + 1 > data_.size()) return fail(), 0;
    return data_[pos_++];
  }
  [[nodiscard]] uint32_t get_u32() noexcept {
    if (pos_ + 4 > data_.size()) return fail(), 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(data_[pos_++]) << (8 * i);
    return v;
  }
  [[nodiscard]] int32_t get_i32() noexcept { return std::bit_cast<int32_t>(get_u32()); }
  [[nodiscard]] uint64_t get_u64() noexcept {
    if (pos_ + 8 > data_.size()) return fail(), 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(data_[pos_++]) << (8 * i);
    return v;
  }
  [[nodiscard]] float get_f32() noexcept { return std::bit_cast<float>(get_u32()); }
  [[nodiscard]] double get_f64() noexcept { return std::bit_cast<double>(get_u64()); }
  [[nodiscard]] bool expect_tag(std::string_view tag) noexcept {
    for (char c : tag) {
      if (get_u8() != static_cast<uint8_t>(c)) return fail();
    }
    return ok_;
  }

  /// Guard helper for length fields: a corrupt count must not trigger a
  /// gigantic allocation. Fails unless `count * elem_size` fits what's left.
  [[nodiscard]] bool can_hold(uint64_t count, size_t elem_size) noexcept {
    if (elem_size == 0) return ok_;
    if (count > (data_.size() - pos_) / elem_size) return fail();
    return ok_;
  }

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] bool at_end() const noexcept { return ok_ && pos_ == data_.size(); }

 private:
  bool fail() noexcept {
    ok_ = false;
    pos_ = data_.size();
    return false;
  }
  std::span<const uint8_t> data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace nuevomatch::serialize
