#include "serialize/serialize.hpp"

#include <cstdio>
#include <memory>

#include "common/failpoint.hpp"
#include "serialize/bytes.hpp"

namespace nuevomatch::serialize {

namespace {

constexpr std::string_view kModelMagic = "NMRQ";
constexpr std::string_view kRulesMagic = "NMRS";
constexpr std::string_view kClassifierMagic = "NMCL";
constexpr std::string_view kOnlineMagic = "NMOL";

void put_submodel(ByteWriter& w, const rqrmi::Submodel& m) {
  for (float v : m.w1) w.put_f32(v);
  for (float v : m.b1) w.put_f32(v);
  for (float v : m.w2) w.put_f32(v);
  w.put_f32(m.b2);
}

[[nodiscard]] rqrmi::Submodel get_submodel(ByteReader& r) {
  rqrmi::Submodel m;
  for (float& v : m.w1) v = r.get_f32();
  for (float& v : m.b1) v = r.get_f32();
  for (float& v : m.w2) v = r.get_f32();
  m.b2 = r.get_f32();
  return m;
}

void put_model_body(ByteWriter& w, const rqrmi::RqRmi& model) {
  w.put_u64(model.num_intervals());
  const auto& stages = model.stages();
  w.put_u32(static_cast<uint32_t>(stages.size()));
  for (const auto& stage : stages) {
    w.put_u32(static_cast<uint32_t>(stage.size()));
    for (const auto& m : stage) put_submodel(w, m);
  }
  const auto& errors = model.leaf_errors();
  w.put_u32(static_cast<uint32_t>(errors.size()));
  for (uint32_t e : errors) w.put_u32(e);
  const auto& resp = model.leaf_responsibilities();
  w.put_u32(static_cast<uint32_t>(resp.size()));
  for (const auto& leaf : resp) {
    w.put_u32(static_cast<uint32_t>(leaf.size()));
    for (const auto& iv : leaf) {
      w.put_f64(iv.lo);
      w.put_f64(iv.hi);
    }
  }
}

// Only the nested stage weights travel on the wire; the flat inference arena
// used by lookup_batch is derived state that RqRmi::restore rebuilds on load.
[[nodiscard]] std::optional<rqrmi::RqRmi> get_model_body(ByteReader& r) {
  const uint64_t n_values = r.get_u64();
  const uint32_t n_stages = r.get_u32();
  if (!r.can_hold(n_stages, 4)) return std::nullopt;
  std::vector<std::vector<rqrmi::Submodel>> stages(n_stages);
  for (auto& stage : stages) {
    const uint32_t width = r.get_u32();
    if (!r.can_hold(width, rqrmi::Submodel::packed_bytes())) return std::nullopt;
    stage.reserve(width);
    for (uint32_t j = 0; j < width; ++j) stage.push_back(get_submodel(r));
  }
  const uint32_t n_err = r.get_u32();
  if (!r.can_hold(n_err, 4)) return std::nullopt;
  std::vector<uint32_t> errors(n_err);
  for (auto& e : errors) e = r.get_u32();
  const uint32_t n_resp = r.get_u32();
  if (!r.can_hold(n_resp, 4)) return std::nullopt;
  std::vector<std::vector<rqrmi::RqRmi::DomainInterval>> resp(n_resp);
  for (auto& leaf : resp) {
    const uint32_t n_iv = r.get_u32();
    if (!r.can_hold(n_iv, 16)) return std::nullopt;
    leaf.resize(n_iv);
    for (auto& iv : leaf) {
      iv.lo = r.get_f64();
      iv.hi = r.get_f64();
    }
  }
  if (!r.ok()) return std::nullopt;
  rqrmi::RqRmi model;
  try {
    model.restore(std::move(stages), std::move(errors), std::move(resp), n_values);
  } catch (const std::invalid_argument&) {
    return std::nullopt;
  }
  return model;
}

void put_rule(ByteWriter& w, const Rule& rule) {
  for (const Range& rg : rule.field) {
    w.put_u32(rg.lo);
    w.put_u32(rg.hi);
  }
  w.put_i32(rule.priority);
  w.put_u32(rule.id);
  w.put_i32(rule.action);
}

[[nodiscard]] Rule get_rule(ByteReader& r) {
  Rule rule;
  for (Range& rg : rule.field) {
    rg.lo = r.get_u32();
    rg.hi = r.get_u32();
  }
  rule.priority = r.get_i32();
  rule.id = r.get_u32();
  rule.action = r.get_i32();
  return rule;
}

void put_rules_body(ByteWriter& w, std::span<const Rule> rules) {
  w.put_u64(rules.size());
  for (const Rule& rule : rules) put_rule(w, rule);
}

constexpr size_t kRuleWireBytes = kNumFields * 8 + 12;

[[nodiscard]] std::optional<RuleSet> get_rules_body(ByteReader& r) {
  const uint64_t n = r.get_u64();
  if (!r.can_hold(n, kRuleWireBytes)) return std::nullopt;
  RuleSet rules;
  rules.reserve(n);
  for (uint64_t i = 0; i < n; ++i) rules.push_back(get_rule(r));
  if (!r.ok()) return std::nullopt;
  return rules;
}

void put_classifier_body(ByteWriter& w, const NuevoMatch& nm) {
  w.put_u32(static_cast<uint32_t>(nm.isets().size()));
  for (const IsetIndex& is : nm.isets()) {
    w.put_u32(static_cast<uint32_t>(is.field()));
    put_rules_body(w, is.rules());
    put_model_body(w, is.model());
    // v2: deletions since the last (re)build are tombstones in the array
    // above (the model is trained on the full array); ship their ids so the
    // load path can re-apply them instead of resurrecting the rules.
    w.put_u32(static_cast<uint32_t>(is.size() - is.live_rules()));
    for (size_t i = 0; i < is.size(); ++i)
      if (!is.alive(i)) w.put_u32(is.rules()[i].id);
  }
  put_rules_body(w, nm.remainder_rules());
  // v2: update-pressure counters, so absorption tracking (and with it the
  // retrain policy) survives a checkpoint round-trip.
  w.put_u64(nm.built_size());
  w.put_u64(nm.migrated());
}

[[nodiscard]] std::optional<NuevoMatch> get_classifier_body(ByteReader& r,
                                                            NuevoMatchConfig cfg) {
  const uint32_t n_isets = r.get_u32();
  if (!r.can_hold(n_isets, 4)) return std::nullopt;
  std::vector<IsetIndex> isets;
  isets.reserve(n_isets);
  std::vector<uint32_t> erased_ids;
  for (uint32_t i = 0; i < n_isets; ++i) {
    const uint32_t field = r.get_u32();
    if (field >= static_cast<uint32_t>(kNumFields)) return std::nullopt;
    auto rules = get_rules_body(r);
    if (!rules) return std::nullopt;
    auto model = get_model_body(r);
    if (!model) return std::nullopt;
    const uint32_t n_dead = r.get_u32();
    if (n_dead > rules->size() || !r.can_hold(n_dead, 4)) return std::nullopt;
    for (uint32_t d = 0; d < n_dead; ++d) erased_ids.push_back(r.get_u32());
    IsetIndex idx;
    try {
      idx.restore(static_cast<int>(field), std::move(*rules), std::move(*model));
    } catch (const std::invalid_argument&) {
      return std::nullopt;
    }
    isets.push_back(std::move(idx));
  }
  auto remainder = get_rules_body(r);
  if (!remainder) return std::nullopt;
  const uint64_t built_size = r.get_u64();
  const uint64_t migrated = r.get_u64();
  if (!r.ok()) return std::nullopt;
  NuevoMatch nm{std::move(cfg)};
  nm.restore(std::move(isets), std::move(*remainder), erased_ids,
             static_cast<size_t>(built_size), static_cast<size_t>(migrated));
  return nm;
}

}  // namespace

std::vector<uint8_t> save_model(const rqrmi::RqRmi& model) {
  ByteWriter w;
  w.put_tag(kModelMagic);
  w.put_u32(kFormatVersion);
  put_model_body(w, model);
  return std::move(w).finish();
}

std::optional<rqrmi::RqRmi> load_model(std::span<const uint8_t> bytes) {
  // Injected read failure (failpoint "serialize.load"): a checkpoint that
  // cannot be read reports failure through the same fail-soft channel as a
  // corrupt one — callers must already handle std::nullopt.
  if (failpoint::should_fire(failpoint::kSerializeLoad)) return std::nullopt;
  ByteReader r{bytes};
  if (!r.check_crc()) return std::nullopt;
  if (!r.expect_tag(kModelMagic) || r.get_u32() != kFormatVersion) return std::nullopt;
  auto model = get_model_body(r);
  if (!model || !r.at_end()) return std::nullopt;
  return model;
}

std::vector<uint8_t> save_rules(std::span<const Rule> rules) {
  ByteWriter w;
  w.put_tag(kRulesMagic);
  w.put_u32(kFormatVersion);
  put_rules_body(w, rules);
  return std::move(w).finish();
}

std::optional<RuleSet> load_rules(std::span<const uint8_t> bytes) {
  if (failpoint::should_fire(failpoint::kSerializeLoad)) return std::nullopt;
  ByteReader r{bytes};
  if (!r.check_crc()) return std::nullopt;
  if (!r.expect_tag(kRulesMagic) || r.get_u32() != kFormatVersion) return std::nullopt;
  auto rules = get_rules_body(r);
  if (!rules || !r.at_end()) return std::nullopt;
  return rules;
}

std::vector<uint8_t> save_classifier(const NuevoMatch& nm) {
  ByteWriter w;
  w.put_tag(kClassifierMagic);
  w.put_u32(kFormatVersion);
  put_classifier_body(w, nm);
  return std::move(w).finish();
}

std::optional<NuevoMatch> load_classifier(std::span<const uint8_t> bytes,
                                          NuevoMatchConfig cfg) {
  if (failpoint::should_fire(failpoint::kSerializeLoad)) return std::nullopt;
  ByteReader r{bytes};
  if (!r.check_crc()) return std::nullopt;
  if (!r.expect_tag(kClassifierMagic) || r.get_u32() != kFormatVersion)
    return std::nullopt;
  auto nm = get_classifier_body(r, std::move(cfg));
  if (!nm || !r.at_end()) return std::nullopt;
  return nm;
}

std::vector<uint8_t> save_online(const OnlineNuevoMatch& online) {
  ByteWriter w;
  w.put_tag(kOnlineMagic);
  w.put_u32(kFormatVersion);
  // v3: the sharded update path's state. The counters are lock-free atomic
  // reads; the classifier body is the writer-excluded composed view (see
  // with_stable_view) — two consistent sections, not one atomic cut: under
  // live churn ops can land between the counter read and the body
  // snapshot, so the counters may run a few ops BEHIND the body (harmless —
  // they are telemetry; quiesce callers who need an exact pairing).
  const std::vector<uint64_t> counts = online.shard_op_counts();
  w.put_u32(static_cast<uint32_t>(counts.size()));
  for (const uint64_t c : counts) w.put_u64(c);
  online.with_stable_view(
      [&](const NuevoMatch& nm) { put_classifier_body(w, nm); });
  return std::move(w).finish();
}

std::unique_ptr<OnlineNuevoMatch> load_online(std::span<const uint8_t> bytes,
                                              OnlineConfig cfg) {
  if (failpoint::should_fire(failpoint::kSerializeLoad)) return nullptr;
  ByteReader r{bytes};
  if (!r.check_crc()) return nullptr;
  if (!r.expect_tag(kOnlineMagic) || r.get_u32() != kFormatVersion) return nullptr;
  const uint32_t n_shards = r.get_u32();
  if (!r.can_hold(n_shards, 8)) return nullptr;
  std::vector<uint64_t> counts(n_shards);
  for (uint64_t& c : counts) c = r.get_u64();
  auto nm = get_classifier_body(r, cfg.base);
  if (!nm || !r.at_end()) return nullptr;
  auto online = std::make_unique<OnlineNuevoMatch>(std::move(cfg));
  online->adopt(std::move(*nm), counts);
  return online;
}

bool write_file(const std::string& path, std::span<const uint8_t> bytes) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> f{std::fopen(path.c_str(), "wb"),
                                                    &std::fclose};
  if (!f) return false;
  return std::fwrite(bytes.data(), 1, bytes.size(), f.get()) == bytes.size();
}

std::optional<std::vector<uint8_t>> read_file(const std::string& path) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> f{std::fopen(path.c_str(), "rb"),
                                                    &std::fclose};
  if (!f) return std::nullopt;
  std::vector<uint8_t> out;
  uint8_t buf[4096];
  size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof buf, f.get())) > 0)
    out.insert(out.end(), buf, buf + got);
  return out;
}

}  // namespace nuevomatch::serialize
