// Uniform classifier interface implemented by every engine in the repo
// (LinearSearch, TupleMerge, TupleSpaceSearch, CutSplit, NeuroCutsLike,
// NuevoMatch). Benchmarks and NuevoMatch's remainder path treat engines
// interchangeably through this API.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <string>

#include "common/types.hpp"

namespace nuevomatch {

class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Build the index from scratch. Rules must pass validate_ruleset().
  virtual void build(std::span<const Rule> rules) = 0;

  /// Highest-priority matching rule, or MatchResult::kNoMatch.
  [[nodiscard]] virtual MatchResult match(const Packet& p) const = 0;

  /// Early-termination variant (paper Section 4): return the best match
  /// strictly better than `priority_floor` (numerically smaller), or a miss.
  /// Engines that cannot prune simply delegate to match() and let the caller
  /// filter; the default does exactly that.
  [[nodiscard]] virtual MatchResult match_with_floor(const Packet& p,
                                                     int32_t priority_floor) const {
    MatchResult r = match(p);
    if (r.hit() && r.priority >= priority_floor) return MatchResult{};
    return r;
  }

  /// --- Incremental updates (paper Section 3.9) -------------------------
  [[nodiscard]] virtual bool supports_updates() const { return false; }
  virtual bool insert(const Rule&) { return false; }
  virtual bool erase(uint32_t /*rule_id*/) { return false; }

  /// Index memory in bytes, excluding the rule bodies themselves (the
  /// paper's Figure 13 convention: "only the index data structures but not
  /// the rules").
  [[nodiscard]] virtual size_t memory_bytes() const = 0;

  /// Number of rules currently indexed.
  [[nodiscard]] virtual size_t size() const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Factory used by NuevoMatch to construct its remainder backend.
using ClassifierFactory = std::function<std::unique_ptr<Classifier>()>;

}  // namespace nuevomatch
