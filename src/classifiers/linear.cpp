#include "classifiers/linear.hpp"

#include <algorithm>

namespace nuevomatch {

namespace {
bool priority_less(const Rule& a, const Rule& b) {
  if (a.priority != b.priority) return a.priority < b.priority;
  return a.id < b.id;
}
}  // namespace

void LinearSearch::build(std::span<const Rule> rules) {
  rules_.assign(rules.begin(), rules.end());
  std::sort(rules_.begin(), rules_.end(), priority_less);
}

MatchResult LinearSearch::match(const Packet& p) const {
  for (const Rule& r : rules_) {
    if (r.matches(p)) return MatchResult{static_cast<int32_t>(r.id), r.priority};
  }
  return MatchResult{};
}

MatchResult LinearSearch::match_with_floor(const Packet& p, int32_t priority_floor) const {
  for (const Rule& r : rules_) {
    if (r.priority >= priority_floor) break;  // sorted: nothing better follows
    if (r.matches(p)) return MatchResult{static_cast<int32_t>(r.id), r.priority};
  }
  return MatchResult{};
}

bool LinearSearch::insert(const Rule& r) {
  const auto it = std::lower_bound(rules_.begin(), rules_.end(), r, priority_less);
  rules_.insert(it, r);
  return true;
}

bool LinearSearch::erase(uint32_t rule_id) {
  const auto it = std::find_if(rules_.begin(), rules_.end(),
                               [&](const Rule& r) { return r.id == rule_id; });
  if (it == rules_.end()) return false;
  rules_.erase(it);
  return true;
}

size_t LinearSearch::memory_bytes() const { return rules_.size() * sizeof(Rule); }

}  // namespace nuevomatch
