// Priority-ordered linear scan. O(n) per lookup; the correctness oracle for
// every other engine and the paper's implicit ground truth.
#pragma once

#include <vector>

#include "classifiers/classifier.hpp"

namespace nuevomatch {

class LinearSearch final : public Classifier {
 public:
  void build(std::span<const Rule> rules) override;
  [[nodiscard]] MatchResult match(const Packet& p) const override;
  [[nodiscard]] MatchResult match_with_floor(const Packet& p,
                                             int32_t priority_floor) const override;

  [[nodiscard]] bool supports_updates() const override { return true; }
  bool insert(const Rule& r) override;
  bool erase(uint32_t rule_id) override;

  [[nodiscard]] size_t memory_bytes() const override;
  [[nodiscard]] size_t size() const override { return rules_.size(); }
  [[nodiscard]] std::string name() const override { return "linear"; }

 private:
  std::vector<Rule> rules_;  // sorted by (priority, id)
};

}  // namespace nuevomatch
