#include "isets/iset_index.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/mem.hpp"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace nuevomatch {

namespace {

/// Number of entries in [begin, begin+count) that are <= v, assuming the
/// array is sorted ascending. Vectorized over 8 lanes (paper Section 4:
/// field values are packed so the secondary search walks whole cache lines).
size_t count_leq(const uint32_t* begin, size_t count, uint32_t v) noexcept {
#if defined(__AVX2__)
  // Unsigned compare via sign-bit bias; lanes are counted with popcount.
  const __m256i bias = _mm256_set1_epi32(static_cast<int32_t>(0x80000000u));
  const __m256i vv =
      _mm256_xor_si256(_mm256_set1_epi32(static_cast<int32_t>(v)), bias);
  size_t n = 0;
  size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    const __m256i raw =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(begin + i));
    const __m256i x = _mm256_xor_si256(raw, bias);
    const __m256i gt = _mm256_cmpgt_epi32(x, vv);
    const auto gt_mask =
        static_cast<uint32_t>(_mm256_movemask_ps(_mm256_castsi256_ps(gt)));
    n += 8 - static_cast<size_t>(__builtin_popcount(gt_mask));
    if (gt_mask != 0) return n;  // sorted: nothing after can be <= v
  }
  for (; i < count; ++i) {
    if (begin[i] > v) break;
    ++n;
  }
  return n;
#else
  return static_cast<size_t>(std::upper_bound(begin, begin + count, v) - begin);
#endif
}

}  // namespace

void IsetIndex::index_rules() {
  domain_ = kFieldDomain[static_cast<size_t>(field_)];
  inv_domain_ = rqrmi::normalize_reciprocal(domain_);
  live_ = rules_.size();
  lo_.resize(rules_.size());
  hi_.resize(rules_.size());
  prio_.resize(rules_.size());
  id_.resize(rules_.size());
  wild_rest_.resize(rules_.size());
  alive_.assign(rules_.size(), 1);
  pos_by_id_.clear();
  pos_by_id_.reserve(rules_.size());
  for (size_t i = 0; i < rules_.size(); ++i) {
    const Range& r = rules_[i].field[static_cast<size_t>(field_)];
    lo_[i] = r.lo;
    hi_[i] = r.hi;
    prio_[i] = rules_[i].priority;
    id_[i] = rules_[i].id;
    bool wild = true;
    for (int f = 0; f < kNumFields; ++f)
      if (f != field_ && !rules_[i].is_wildcard(f)) wild = false;
    wild_rest_[i] = wild ? 1 : 0;
    pos_by_id_.emplace(rules_[i].id, static_cast<uint32_t>(i));
    if (i > 0 && lo_[i] <= hi_[i - 1])
      throw std::invalid_argument{"IsetIndex: rules must be disjoint and sorted in field"};
  }
}

void IsetIndex::build(int field, std::vector<Rule> rules, const rqrmi::RqRmiConfig& cfg) {
  field_ = field;
  rules_ = std::move(rules);
  index_rules();
  std::vector<rqrmi::KeyInterval> intervals;
  intervals.reserve(rules_.size());
  for (size_t i = 0; i < rules_.size(); ++i) {
    intervals.push_back(rqrmi::KeyInterval{
        rqrmi::normalize_key_exact(lo_[i], domain_),
        rqrmi::normalize_key_exact(static_cast<uint64_t>(hi_[i]) + 1, domain_),
        static_cast<uint32_t>(i)});
  }
  model_.build(std::move(intervals), cfg);
}

void IsetIndex::restore(int field, std::vector<Rule> rules, rqrmi::RqRmi model) {
  if (model.num_intervals() != rules.size())
    throw std::invalid_argument{"IsetIndex::restore: model/rule count mismatch"};
  field_ = field;
  rules_ = std::move(rules);
  index_rules();
  model_ = std::move(model);
}

rqrmi::Prediction IsetIndex::predict(uint32_t v, rqrmi::SimdLevel level) const noexcept {
  return model_.lookup(rqrmi::normalize_key_mul(v, inv_domain_), level);
}

rqrmi::Prediction IsetIndex::predict(uint32_t v) const noexcept {
  return model_.lookup(rqrmi::normalize_key_mul(v, inv_domain_));
}

void IsetIndex::predict_batch(std::span<const uint32_t> values,
                              std::span<rqrmi::Prediction> out,
                              rqrmi::SimdLevel level) const noexcept {
  constexpr size_t kChunk = 64;
  float keys[kChunk];
  for (size_t base = 0; base < values.size(); base += kChunk) {
    const size_t m = std::min(kChunk, values.size() - base);
    for (size_t t = 0; t < m; ++t)
      keys[t] = rqrmi::normalize_key_mul(values[base + t], inv_domain_);
    model_.lookup_batch(std::span<const float>{keys, m}, out.subspan(base, m), level);
  }
}

void IsetIndex::predict_batch(std::span<const uint32_t> values,
                              std::span<rqrmi::Prediction> out) const noexcept {
  predict_batch(values, out, rqrmi::best_simd_level());
}

int32_t IsetIndex::search(uint32_t v, const rqrmi::Prediction& pred) const noexcept {
  if (lo_.empty()) return -1;
  const auto n = static_cast<int64_t>(lo_.size());
  const int64_t first =
      std::max<int64_t>(0, static_cast<int64_t>(pred.index) - pred.search_error);
  const int64_t last =
      std::min<int64_t>(n - 1, static_cast<int64_t>(pred.index) + pred.search_error);
  if (first > last) return -1;
  // Last position in the window with lo <= v (ranges are disjoint & sorted,
  // so it is the only one that can contain v).
  const size_t leq = count_leq(lo_.data() + first,
                               static_cast<size_t>(last - first + 1), v);
  if (leq == 0) return -1;
  const auto pos = static_cast<int32_t>(static_cast<size_t>(first) + leq - 1);
  return hi_[static_cast<size_t>(pos)] >= v ? pos : -1;
}

void IsetIndex::search_batch(std::span<const uint32_t> values,
                             std::span<const rqrmi::Prediction> preds,
                             std::span<int32_t> out) const noexcept {
  // One wave of windows is prefetched ahead of the one being walked, so the
  // bounded searches overlap their DRAM accesses instead of serializing.
  constexpr size_t kWave = 4;
  const size_t n = values.size();
  for (size_t i = 0; i < n && i < kWave; ++i) prefetch_window(preds[i]);
  for (size_t i = 0; i < n; ++i) {
    if (i + kWave < n) prefetch_window(preds[i + kWave]);
    out[i] = search(values[i], preds[i]);
  }
}

void IsetIndex::prefetch_window(const rqrmi::Prediction& pred) const noexcept {
  if (lo_.empty()) return;
  const auto first = std::min<size_t>(
      lo_.size() - 1,
      static_cast<size_t>(std::max<int64_t>(
          0, static_cast<int64_t>(pred.index) - pred.search_error)));
  __builtin_prefetch(lo_.data() + first);
  __builtin_prefetch(hi_.data() + first);
}

MatchResult IsetIndex::validate(int32_t pos, const Packet& p) const noexcept {
  return validate(pos, p, std::numeric_limits<int32_t>::max());
}

MatchResult IsetIndex::validate(int32_t pos, const Packet& p,
                                int32_t priority_floor) const noexcept {
  if (pos < 0) return MatchResult{};
  const auto i = static_cast<size_t>(pos);
  // Packed metadata first: a candidate that cannot beat the floor, or whose
  // other fields are wildcards, never needs its rule body fetched.
  if (prio_[i] >= priority_floor || alive_load(i) == 0) return MatchResult{};
  if (wild_rest_[i])
    return MatchResult{static_cast<int32_t>(id_[i]), prio_[i]};
  const Rule& r = rules_[i];
  if (!r.matches(p)) return MatchResult{};
  return MatchResult{static_cast<int32_t>(r.id), r.priority};
}

MatchResult IsetIndex::lookup(const Packet& p, rqrmi::SimdLevel level) const noexcept {
  const uint32_t v = p[field_];
  return validate(search(v, predict(v, level)), p);
}

MatchResult IsetIndex::lookup(const Packet& p) const noexcept {
  const uint32_t v = p[field_];
  return validate(search(v, predict(v)), p);
}

MatchResult IsetIndex::lookup_with_floor(const Packet& p,
                                         int32_t priority_floor) const noexcept {
  const uint32_t v = p[field_];
  return validate(search(v, predict(v)), p, priority_floor);
}

bool IsetIndex::erase(uint32_t rule_id) noexcept {
  const auto it = pos_by_id_.find(rule_id);
  if (it == pos_by_id_.end() || alive_load(it->second) == 0) return false;
  alive_store(it->second, 0);
  --live_;
  return true;
}

size_t IsetIndex::rule_storage_bytes() const noexcept {
  return lo_.size() * sizeof(uint32_t) + hi_.size() * sizeof(uint32_t) +
         prio_.size() * sizeof(int32_t) + id_.size() * sizeof(uint32_t) +
         wild_rest_.size() + rules_.size() * sizeof(Rule) + alive_.size() +
         map_overhead_bytes(pos_by_id_);
}

}  // namespace nuevomatch
