// Classical interval-scheduling maximization (paper Section 3.6.1, citing
// Kleinberg & Tardos): the largest subset of rules whose ranges in one field
// are pairwise non-overlapping — the building block of iSet partitioning.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace nuevomatch {

/// Indices (positions into `rules`) of a maximum-cardinality subset whose
/// ranges in `field` are pairwise disjoint. Greedy by smallest upper bound;
/// provably optimal for this objective. Output is sorted by range lo.
[[nodiscard]] std::vector<uint32_t> max_independent_set(std::span<const Rule> rules,
                                                        int field);

/// Rule-set diversity of a field (paper §3.7): unique values / total rules,
/// defined for exact-match fields; ranges count by their lo endpoint.
[[nodiscard]] double ruleset_diversity(std::span<const Rule> rules, int field);

/// Rule-set centrality (paper §3.7): the maximum number of rules that all
/// pairwise overlap across every field (share a common point). Computed as
/// the max over fields' single-point overlap is a lower bound; we report the
/// max clique size over one dimension, which lower-bounds the iSets needed.
[[nodiscard]] size_t ruleset_centrality(std::span<const Rule> rules, int field);

}  // namespace nuevomatch
