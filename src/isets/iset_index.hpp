// One indexed iSet (paper Figure 1, left path): an RQ-RMI predicting the
// position of the matching rule in a field-sorted array, a bounded secondary
// search around the prediction, and multi-field validation of the candidate.
//
// Field values of the sorted rules are stored as structure-of-arrays so the
// secondary search touches densely packed cache lines (paper Section 4,
// "Inference and secondary search").
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "rqrmi/model.hpp"

namespace nuevomatch {

class IsetIndex {
 public:
  /// `rules` must be pairwise non-overlapping in `field` and sorted by the
  /// field's lo (exactly what partition_rules produces).
  void build(int field, std::vector<Rule> rules, const rqrmi::RqRmiConfig& cfg);

  /// Reinstate from an already-trained model (the serializer's load path).
  /// `rules` must be the exact rule array the model was trained on.
  void restore(int field, std::vector<Rule> rules, rqrmi::RqRmi model);

  /// Full lookup: predict, search, validate. Returns the validated match or
  /// a miss (validation may reject the candidate on another field, §3.6).
  [[nodiscard]] MatchResult lookup(const Packet& p) const noexcept;
  [[nodiscard]] MatchResult lookup(const Packet& p, rqrmi::SimdLevel level) const noexcept;
  /// Early-termination variant: candidates at or below `priority_floor` are
  /// rejected from packed metadata before the rule body is ever fetched.
  [[nodiscard]] MatchResult lookup_with_floor(const Packet& p,
                                              int32_t priority_floor) const noexcept;

  // --- staged API (used by the Figure 14 runtime-breakdown bench and the
  // --- batch pipeline) ---------------------------------------------------
  [[nodiscard]] rqrmi::Prediction predict(uint32_t field_value) const noexcept;
  [[nodiscard]] rqrmi::Prediction predict(uint32_t field_value,
                                          rqrmi::SimdLevel level) const noexcept;
  /// Cross-packet batched prediction: normalizes the values (reciprocal
  /// multiply, no divide) and runs the RQ-RMI lane-per-packet kernels.
  /// Writes values.size() predictions to `out`.
  void predict_batch(std::span<const uint32_t> values,
                     std::span<rqrmi::Prediction> out) const noexcept;
  void predict_batch(std::span<const uint32_t> values,
                     std::span<rqrmi::Prediction> out,
                     rqrmi::SimdLevel level) const noexcept;
  /// Bounded binary search around the prediction; -1 when no stored range
  /// contains the value.
  [[nodiscard]] int32_t search(uint32_t field_value,
                               const rqrmi::Prediction& pred) const noexcept;
  /// Batched bounded secondary search: interleaves the per-packet windows,
  /// prefetching one wave ahead so a window's cache lines are in flight
  /// while earlier packets are still being searched.
  void search_batch(std::span<const uint32_t> values,
                    std::span<const rqrmi::Prediction> preds,
                    std::span<int32_t> out) const noexcept;
  /// Hint the cache that `pred`'s search window is about to be walked
  /// (the batch pipeline issues these one stage ahead).
  void prefetch_window(const rqrmi::Prediction& pred) const noexcept;
  /// Validate candidate position against all packet fields (tombstone-aware).
  [[nodiscard]] MatchResult validate(int32_t pos, const Packet& p) const noexcept;
  /// Same with a priority floor: the packed priority/shape metadata decides
  /// cheap rejections (floor) and cheap accepts (rules wildcard outside the
  /// indexed field) without touching the rule body (paper Section 4 packs
  /// per-rule values exactly to avoid these memory accesses).
  [[nodiscard]] MatchResult validate(int32_t pos, const Packet& p,
                                     int32_t priority_floor) const noexcept;

  /// Tombstone a rule (paper §3.9 deletion path). Returns false if absent.
  /// O(1) via the id→position map; the sorted arrays and the trained model
  /// are untouched, so the §3.3 error certification stays valid. The flip
  /// itself is an atomic byte store: the online engine's wait-free readers
  /// race it lock-free, and a monotone 1→0 flag read at validation time is
  /// linearizable either way (a tombstone can only turn a hit into a miss,
  /// never shift a certified position — DESIGN.md "Update path"). Callers
  /// must still serialize erase() against other *writers* (live_ and the
  /// id map are plain).
  bool erase(uint32_t rule_id) noexcept;

  /// Whether position `i` is live (not tombstoned). Serializer support: the
  /// full rule array must travel with the model, so deletions are encoded as
  /// dead ids on the side. Atomic read — safe to call concurrently with
  /// erase() (same contract as lookups).
  [[nodiscard]] bool alive(size_t i) const noexcept { return alive_load(i) != 0; }

  [[nodiscard]] int field() const noexcept { return field_; }
  [[nodiscard]] size_t size() const noexcept { return rules_.size(); }
  [[nodiscard]] size_t live_rules() const noexcept { return live_; }
  [[nodiscard]] uint32_t max_search_error() const noexcept {
    return model_.max_search_error();
  }
  /// RQ-RMI weights — the part that must stay in cache (Figure 1 keeps the
  /// rule bodies in DRAM).
  [[nodiscard]] size_t model_bytes() const noexcept { return model_.memory_bytes(); }
  /// Sorted field arrays + rule bodies (the DRAM side).
  [[nodiscard]] size_t rule_storage_bytes() const noexcept;
  [[nodiscard]] const rqrmi::RqRmi& model() const noexcept { return model_; }
  [[nodiscard]] const std::vector<Rule>& rules() const noexcept { return rules_; }

 private:
  /// Fill the SoA arrays from rules_; validates sortedness/disjointness.
  void index_rules();

  /// Tombstone flag access. std::atomic_ref on the plain byte array keeps
  /// the SoA layout (and its serializer framing) unchanged while giving the
  /// reader/writer race defined behavior; relaxed order suffices because
  /// nothing else is published through the flag (the rule body it gates is
  /// immutable) — cross-thread visibility ordering comes from the caller
  /// (the online engine's swap machinery, or plain thread join).
  [[nodiscard]] uint8_t alive_load(size_t i) const noexcept {
    return std::atomic_ref<uint8_t>(const_cast<uint8_t&>(alive_[i]))
        .load(std::memory_order_relaxed);
  }
  void alive_store(size_t i, uint8_t v) noexcept {
    std::atomic_ref<uint8_t>(alive_[i]).store(v, std::memory_order_relaxed);
  }

  int field_ = 0;
  uint64_t domain_ = 0;
  double inv_domain_ = 0.0;  // 1/(domain_+1): multiply, don't divide, per key
  std::vector<uint32_t> lo_;      // SoA: range starts, sorted
  std::vector<uint32_t> hi_;      // SoA: range ends
  std::vector<int32_t> prio_;     // SoA: rule priorities
  std::vector<uint32_t> id_;      // SoA: rule ids
  std::vector<uint8_t> wild_rest_;  // 1 = wildcard in every non-indexed field
  std::vector<Rule> rules_;       // same order as lo_/hi_
  std::vector<uint8_t> alive_;    // tombstones
  std::unordered_map<uint32_t, uint32_t> pos_by_id_;  // O(1) erase
  size_t live_ = 0;
  rqrmi::RqRmi model_;
};

}  // namespace nuevomatch
