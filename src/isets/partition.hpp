// Greedy iSet partitioning (paper Section 3.6.1): repeatedly extract the
// largest independent set over any single field; rules never covered by a
// large-enough iSet form the remainder, indexed by an external classifier.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"

namespace nuevomatch {

struct IsetPartitionConfig {
  /// Stop extracting when the next iSet would hold less than this fraction
  /// of the ORIGINAL rule-set (paper §5.1: 25% vs cs/nc, 5% vs tm).
  double min_coverage_fraction = 0.25;
  /// Upper bound on the number of iSets (paper evaluates 0-6; 2-4 typical).
  int max_isets = 4;
};

struct IsetPartition {
  struct Iset {
    int field = 0;
    std::vector<Rule> rules;  // sorted by range lo in `field`, pairwise disjoint
  };
  std::vector<Iset> isets;
  std::vector<Rule> remainder;
  size_t total_rules = 0;

  [[nodiscard]] double coverage() const noexcept {
    if (total_rules == 0) return 0.0;
    size_t covered = 0;
    for (const auto& s : isets) covered += s.rules.size();
    return static_cast<double>(covered) / static_cast<double>(total_rules);
  }
};

[[nodiscard]] IsetPartition partition_rules(std::span<const Rule> rules,
                                            const IsetPartitionConfig& cfg = {});

}  // namespace nuevomatch
