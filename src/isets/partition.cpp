#include "isets/partition.hpp"

#include <algorithm>

#include "isets/interval_scheduling.hpp"

namespace nuevomatch {

IsetPartition partition_rules(std::span<const Rule> rules, const IsetPartitionConfig& cfg) {
  IsetPartition out;
  out.total_rules = rules.size();
  std::vector<Rule> pool{rules.begin(), rules.end()};

  const auto min_rules = static_cast<size_t>(
      cfg.min_coverage_fraction * static_cast<double>(rules.size()));

  while (static_cast<int>(out.isets.size()) < cfg.max_isets && !pool.empty()) {
    // Largest independent set over each field; keep the best field.
    int best_field = -1;
    std::vector<uint32_t> best_set;
    for (int f = 0; f < kNumFields; ++f) {
      auto set = max_independent_set(pool, f);
      if (set.size() > best_set.size()) {
        best_set = std::move(set);
        best_field = f;
      }
    }
    if (best_field < 0 || best_set.size() < std::max<size_t>(min_rules, 1)) break;

    IsetPartition::Iset iset;
    iset.field = best_field;
    iset.rules.reserve(best_set.size());
    std::vector<bool> taken(pool.size(), false);
    for (uint32_t idx : best_set) {
      iset.rules.push_back(pool[idx]);
      taken[idx] = true;
    }
    out.isets.push_back(std::move(iset));

    std::vector<Rule> rest;
    rest.reserve(pool.size() - best_set.size());
    for (size_t i = 0; i < pool.size(); ++i)
      if (!taken[i]) rest.push_back(pool[i]);
    pool = std::move(rest);
  }
  out.remainder = std::move(pool);
  return out;
}

}  // namespace nuevomatch
