#include "isets/interval_scheduling.hpp"

#include <algorithm>
#include <unordered_set>

namespace nuevomatch {

std::vector<uint32_t> max_independent_set(std::span<const Rule> rules, int field) {
  std::vector<uint32_t> order(rules.size());
  for (uint32_t i = 0; i < rules.size(); ++i) order[i] = i;
  // Sort by upper bound; pick each range that starts after the last pick.
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    const Range& ra = rules[a].field[static_cast<size_t>(field)];
    const Range& rb = rules[b].field[static_cast<size_t>(field)];
    if (ra.hi != rb.hi) return ra.hi < rb.hi;
    return ra.lo > rb.lo;  // tighter range first on equal hi
  });
  std::vector<uint32_t> picked;
  uint64_t next_free = 0;  // smallest admissible lo (hi of last pick + 1)
  for (uint32_t idx : order) {
    const Range& r = rules[idx].field[static_cast<size_t>(field)];
    if (r.lo >= next_free) {
      picked.push_back(idx);
      next_free = static_cast<uint64_t>(r.hi) + 1;
    }
  }
  std::sort(picked.begin(), picked.end(), [&](uint32_t a, uint32_t b) {
    return rules[a].field[static_cast<size_t>(field)].lo <
           rules[b].field[static_cast<size_t>(field)].lo;
  });
  return picked;
}

double ruleset_diversity(std::span<const Rule> rules, int field) {
  if (rules.empty()) return 0.0;
  std::unordered_set<uint64_t> uniq;
  for (const Rule& r : rules) {
    const Range& rg = r.field[static_cast<size_t>(field)];
    uniq.insert((static_cast<uint64_t>(rg.lo) << 32) | rg.hi);
  }
  return static_cast<double>(uniq.size()) / static_cast<double>(rules.size());
}

size_t ruleset_centrality(std::span<const Rule> rules, int field) {
  // Sweep-line max overlap depth in one dimension.
  std::vector<std::pair<uint64_t, int>> events;
  events.reserve(rules.size() * 2);
  for (const Rule& r : rules) {
    const Range& rg = r.field[static_cast<size_t>(field)];
    events.emplace_back(rg.lo, +1);
    events.emplace_back(static_cast<uint64_t>(rg.hi) + 1, -1);
  }
  std::sort(events.begin(), events.end());
  size_t depth = 0;
  size_t best = 0;
  for (const auto& [x, d] : events) {
    depth = static_cast<size_t>(static_cast<long>(depth) + d);
    best = std::max(best, depth);
  }
  return best;
}

}  // namespace nuevomatch
