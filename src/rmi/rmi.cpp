#include "rmi/rmi.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "rqrmi/trainer.hpp"

namespace nuevomatch::rmi {

using rqrmi::Submodel;
using rqrmi::TrainSample;
using rqrmi::TrainerConfig;

void Rmi::build(std::vector<KeyIndex> pairs, const RmiConfig& cfg) {
  stages_.clear();
  leaf_errors_.clear();
  n_keys_ = 0;
  n_out_ = 0;
  if (cfg.stage_widths.empty() || cfg.stage_widths.front() != 1)
    throw std::invalid_argument{"RmiConfig: stage_widths must start with 1"};
  if (pairs.empty()) return;

  std::sort(pairs.begin(), pairs.end(), [](const KeyIndex& a, const KeyIndex& b) {
    if (a.key != b.key) return a.key < b.key;
    return a.index < b.index;
  });
  pairs.erase(std::unique(pairs.begin(), pairs.end(),
                          [](const KeyIndex& a, const KeyIndex& b) { return a.key == b.key; }),
              pairs.end());
  n_keys_ = pairs.size();

  // The array positions the last stage must predict span [0, max_index].
  uint32_t max_index = 0;
  for (const KeyIndex& p : pairs) max_index = std::max(max_index, p.index);
  n_out_ = static_cast<size_t>(max_index) + 1;
  const double n_out = static_cast<double>(n_out_);

  const TrainerConfig tcfg{cfg.adam_epochs, cfg.learning_rate, cfg.seed};
  const size_t n_stages = cfg.stage_widths.size();
  stages_.resize(n_stages);

  // Key material per submodel of the current stage. This is the exhaustive
  // per-key partitioning of the original RMI: every training pair is pushed
  // through the trained prefix of the model to find its next-stage submodel
  // (the step RQ-RMI replaces with analytic responsibilities).
  std::vector<std::vector<KeyIndex>> cur(1);
  cur[0] = std::move(pairs);

  for (size_t s = 0; s < n_stages; ++s) {
    const uint32_t width = cfg.stage_widths[s];
    const bool last = (s + 1 == n_stages);
    stages_[s].resize(width);
    if (last) leaf_errors_.assign(width, 0);
    std::vector<std::vector<KeyIndex>> next;
    if (!last) next.resize(cfg.stage_widths[s + 1]);

    for (uint32_t j = 0; j < width; ++j) {
      const std::vector<KeyIndex>& mine = cur[j];
      if (mine.empty()) continue;

      std::vector<TrainSample> ds;
      ds.reserve(mine.size());
      for (const KeyIndex& p : mine)
        ds.push_back(TrainSample{p.key, (static_cast<double>(p.index) + 0.5) / n_out});
      const Submodel model = rqrmi::fit_submodel(ds, tcfg);
      stages_[s][j] = model;

      // Both the partitioning and the error certification run the exact
      // float inference path used by lookup(): the original RMI's guarantee
      // is empirical, so training-time routing must equal query-time routing.
      if (last) {
        // Error bound over the materialized training keys only ([18] §3.4).
        int64_t err = 0;
        for (const KeyIndex& p : mine) {
          const float y = rqrmi::eval(model, static_cast<float>(p.key));
          const auto pred =
              std::min<int64_t>(static_cast<int64_t>(y * static_cast<float>(n_out)),
                                static_cast<int64_t>(max_index));
          err = std::max(err, std::abs(pred - static_cast<int64_t>(p.index)));
        }
        leaf_errors_[j] = static_cast<uint32_t>(err);
      } else {
        const auto next_w = static_cast<float>(cfg.stage_widths[s + 1]);
        for (const KeyIndex& p : mine) {
          const float y = rqrmi::eval(model, static_cast<float>(p.key));
          auto b = static_cast<size_t>(y * next_w);
          if (b >= next.size()) b = next.size() - 1;
          next[b].push_back(p);
        }
      }
    }
    if (!last) cur = std::move(next);
  }
}

rqrmi::Prediction Rmi::lookup(float key) const noexcept {
  if (stages_.empty()) return rqrmi::Prediction{};
  uint32_t leaf = 0;
  const Submodel* m = &stages_[0][0];
  for (size_t s = 0; s + 1 < stages_.size(); ++s) {
    const float y = rqrmi::eval(*m, key);
    const auto width = static_cast<uint32_t>(stages_[s + 1].size());
    uint32_t j = static_cast<uint32_t>(y * static_cast<float>(width));
    if (j >= width) j = width - 1;
    leaf = j;
    m = &stages_[s + 1][j];
  }
  const float y = rqrmi::eval(*m, key);
  auto idx = static_cast<uint32_t>(y * static_cast<float>(n_out_));
  if (n_out_ > 0 && idx >= n_out_) idx = static_cast<uint32_t>(n_out_) - 1;
  return rqrmi::Prediction{idx, leaf_errors_.empty() ? 0 : leaf_errors_[leaf]};
}

uint32_t Rmi::max_search_error() const noexcept {
  uint32_t worst = 0;
  for (uint32_t e : leaf_errors_) worst = std::max(worst, e);
  return worst;
}

size_t Rmi::memory_bytes() const noexcept {
  size_t bytes = 0;
  for (const auto& stage : stages_) bytes += stage.size() * Submodel::packed_bytes();
  bytes += leaf_errors_.size() * sizeof(uint32_t);
  return bytes;
}

size_t Rmi::num_submodels() const noexcept {
  size_t n = 0;
  for (const auto& stage : stages_) n += stage.size();
  return n;
}

uint64_t enumeration_cost(const Rule& rule, std::span<const int> fields) {
  uint64_t total = 1;
  for (int f : fields) {
    const uint64_t span = rule.field[static_cast<size_t>(f)].span();
    if (span != 0 && total > UINT64_MAX / span) return UINT64_MAX;  // saturate
    total *= span;
  }
  return total;
}

uint64_t enumeration_cost(std::span<const Rule> rules, int field) {
  uint64_t total = 0;
  for (const Rule& r : rules) {
    const uint64_t span = r.field[static_cast<size_t>(field)].span();
    if (total > UINT64_MAX - span) return UINT64_MAX;
    total += span;
  }
  return total;
}

std::vector<KeyIndex> enumerate_range_keys(std::span<const Rule> rules, int field,
                                           size_t max_pairs) {
  if (enumeration_cost(rules, field) > max_pairs) return {};
  const uint64_t domain = kFieldDomain[static_cast<size_t>(field)];
  // Highest-priority rule per key: iterate in reverse priority order so that
  // better rules overwrite worse ones, then dedup keeping the winner.
  std::vector<Rule> by_prio(rules.begin(), rules.end());
  std::sort(by_prio.begin(), by_prio.end(), [](const Rule& a, const Rule& b) {
    if (a.priority != b.priority) return a.priority > b.priority;
    return a.id > b.id;
  });
  std::vector<KeyIndex> out;
  for (const Rule& r : by_prio) {
    const Range& rng = r.field[static_cast<size_t>(field)];
    for (uint64_t k = rng.lo; k <= rng.hi; ++k) {
      out.push_back(KeyIndex{rqrmi::normalize_key_exact(k, domain), r.id});
      if (k == domain) break;  // avoid u64 wrap on full-domain ranges
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const KeyIndex& a, const KeyIndex& b) { return a.key < b.key; });
  // Later entries came from higher-priority rules; keep the last per key.
  std::vector<KeyIndex> dedup;
  dedup.reserve(out.size());
  for (const KeyIndex& p : out) {
    if (!dedup.empty() && dedup.back().key == p.key) {
      dedup.back() = p;
    } else {
      dedup.push_back(p);
    }
  }
  return dedup;
}

}  // namespace nuevomatch::rmi
