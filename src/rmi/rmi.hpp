// Classic Recursive Model Index (Kraska et al., SIGMOD'18) — the learned
// index NuevoMatch builds on (paper Section 3.1) and whose limitations
// motivate RQ-RMI (Section 3.2).
//
// An RMI learns an EXACT key -> array-position mapping:
//   * submodels are trained on the materialized training keys only;
//   * responsibilities are determined empirically, by running every training
//     key through the trained prefix of the model (the "exhaustive
//     enumeration" RQ-RMI eliminates, underlined in paper Section 3.1);
//   * the per-leaf error bound is the maximum prediction error OVER THE
//     TRAINING KEYS, so lookups are guaranteed correct only for keys that
//     were present during training ([18] Section 3.4, quoted in §3.2).
//
// To index rule RANGES with an RMI one must enumerate every key in every
// range (paper §3.2: one wildcard rule can explode into 46,592 pairs);
// enumerate_range_keys()/enumeration_cost() quantify exactly that blow-up,
// and the ablation bench contrasts it with RQ-RMI's sampling + analytic
// bounds.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "rqrmi/model.hpp"
#include "rqrmi/nn.hpp"

namespace nuevomatch::rmi {

/// One exact training pair: normalized key in [0,1) -> array position.
struct KeyIndex {
  double key = 0.0;
  uint32_t index = 0;
};

struct RmiConfig {
  /// Stage widths, first entry must be 1 (same convention as RqRmiConfig).
  std::vector<uint32_t> stage_widths{1, 4};
  int adam_epochs = 100;
  double learning_rate = 5e-3;
  uint64_t seed = 1;
};

class Rmi {
 public:
  /// Train on exact key->index pairs (keys need not be sorted; duplicates
  /// keep the smallest index). Empty input builds a trivial model.
  void build(std::vector<KeyIndex> pairs, const RmiConfig& cfg);

  /// Predicted position plus the error bound certified over TRAINING keys.
  /// For keys never seen in training the bound may be violated — that is the
  /// documented RMI limitation RQ-RMI removes.
  [[nodiscard]] rqrmi::Prediction lookup(float key) const noexcept;

  /// Worst per-leaf training-key error (the epsilon of [18]).
  [[nodiscard]] uint32_t max_search_error() const noexcept;

  /// Model weights + error table bytes (cache-resident part).
  [[nodiscard]] size_t memory_bytes() const noexcept;

  [[nodiscard]] size_t num_keys() const noexcept { return n_keys_; }
  [[nodiscard]] size_t num_submodels() const noexcept;
  [[nodiscard]] bool trained() const noexcept { return !stages_.empty(); }

 private:
  std::vector<std::vector<rqrmi::Submodel>> stages_;
  std::vector<uint32_t> leaf_errors_;
  size_t n_keys_ = 0;
  size_t n_out_ = 0;  ///< size of the predicted value array (max index + 1)
};

/// Number of key->index pairs an exact-match RMI needs to index `rule`
/// over the given fields (product of the per-field range spans — the
/// exponential blow-up of paper Section 3.2). Saturates at UINT64_MAX.
[[nodiscard]] uint64_t enumeration_cost(const Rule& rule, std::span<const int> fields);

/// Total enumeration cost of a rule-set over a single field. This is what
/// "train an RMI on ranges" would materialize.
[[nodiscard]] uint64_t enumeration_cost(std::span<const Rule> rules, int field);

/// Materialize the key->index pairs an RMI needs for one field of a rule-set
/// (every integer key in every rule's range; overlaps keep the
/// highest-priority rule). Aborts and returns an empty vector when more than
/// `max_pairs` would be produced — the guard the bench uses to demonstrate
/// infeasibility on wildcard-heavy sets.
[[nodiscard]] std::vector<KeyIndex> enumerate_range_keys(std::span<const Rule> rules,
                                                         int field, size_t max_pairs);

}  // namespace nuevomatch::rmi
