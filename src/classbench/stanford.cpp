#include "classbench/stanford.hpp"

#include <algorithm>

#include "common/prefix.hpp"
#include "common/rng.hpp"

namespace nuevomatch {

namespace {

// The real Stanford backbone tables are hierarchical: host routes nested in
// subnets nested in campus aggregates, plus duplicate prefixes (ECMP/backup
// next hops). Interval scheduling peels such a laminar forest one "leaf
// layer" per iSet, so the per-iSet coverage profile is controlled entirely by
// the depth mix of the prefix families. The mixture below is calibrated to
// the paper's Table 2 last row (57.8 / 91.6 / 96.5 / 98.2 for 1-4 iSets):
//
//   family           rule-mass   iSet it lands in
//   standalone /24     23%       1
//   2-chains           56%       child 1, parent 2
//   3-chains           12%       1 / 2 / 3
//   4-chains            2%       1 / 2 / 3 / 4
//   stars (1+4)         3%       children 1, hub 2
//   dup groups (x8)     4%       one per iSet -> permanent remainder
//
// Every family lives in its own /20 region, allocated bijectively by
// bit-reversing a counter, so families never collide with each other.

/// Bijective 20-bit reversal: distinct /20 block base per family counter.
uint32_t family_region(uint32_t counter) {
  uint32_t rev = 0;
  for (int b = 0; b < 20; ++b) {
    rev = (rev << 1) | ((counter >> b) & 1u);
  }
  return rev << 12;  // /20 base address
}

enum class Family : int { kStandalone, kChain2, kChain3, kChain4, kStar, kDupGroup };

/// Family weights = rule-mass fraction / rules-per-family, so that the
/// emitted rule mass matches the table above.
constexpr double kWeights[] = {
    0.23 / 1,  // standalone
    0.56 / 2,  // 2-chain
    0.12 / 3,  // 3-chain
    0.02 / 4,  // 4-chain
    0.03 / 5,  // star: hub + 4 spokes
    0.04 / 8,  // duplicate group of 8
};

Family pick_family(Rng& rng) {
  double total = 0;
  for (double w : kWeights) total += w;
  double u = rng.next_double() * total;
  for (int i = 0; i < static_cast<int>(std::size(kWeights)); ++i) {
    if (u < kWeights[static_cast<size_t>(i)]) return static_cast<Family>(i);
    u -= kWeights[static_cast<size_t>(i)];
  }
  return Family::kStandalone;
}

}  // namespace

RuleSet generate_stanford_like(int router, size_t n, uint64_t seed) {
  Rng rng{seed ^ (0x57A4F04Dull * static_cast<uint64_t>(router + 1))};
  // Per-router salt keeps the /20 allocation bijective but router-specific.
  const auto salt = static_cast<uint32_t>(rng.next_u32() & 0xFFFFFu);
  RuleSet rules;
  rules.reserve(n);
  uint32_t counter = 0;

  auto emit = [&](Range dst) {
    if (rules.size() >= n) return;
    Rule r;
    r.field[kDstIp] = dst;
    for (int f : {kSrcIp, kSrcPort, kDstPort, kProto})
      r.field[static_cast<size_t>(f)] = full_range(f);
    r.action = static_cast<int32_t>(rng.below(64));  // egress port
    rules.push_back(r);
  };

  while (rules.size() < n) {
    const uint32_t region = family_region((counter++ ^ salt) & 0xFFFFFu);
    const auto sub24 = [&] { return region | (static_cast<uint32_t>(rng.below(16)) << 8); };
    switch (pick_family(rng)) {
      case Family::kStandalone: {
        // Single route; half /24 subnets, half /32 host routes.
        if (rng.chance(0.5)) {
          emit(prefix_to_range(sub24(), 24));
        } else {
          const uint32_t host = region | static_cast<uint32_t>(rng.below(4096));
          emit(Range{host, host});
        }
        break;
      }
      case Family::kChain2: {
        // Aggregate + one more-specific route inside it.
        if (rng.chance(0.75)) {
          const uint32_t s = sub24();
          const uint32_t host = s | static_cast<uint32_t>(rng.below(256));
          emit(Range{host, host});          // leaf: iSet 1
          emit(prefix_to_range(s, 24));     // parent: iSet 2
        } else {
          emit(prefix_to_range(sub24(), 24));
          emit(prefix_to_range(region, 20));
        }
        break;
      }
      case Family::kChain3: {
        const uint32_t s = sub24();
        const uint32_t host = s | static_cast<uint32_t>(rng.below(256));
        emit(Range{host, host});
        emit(prefix_to_range(s, 24));
        emit(prefix_to_range(region, 20));
        break;
      }
      case Family::kChain4: {
        const uint32_t s = sub24();
        const uint32_t s28 = s | (static_cast<uint32_t>(rng.below(16)) << 4);
        const uint32_t host = s28 | static_cast<uint32_t>(rng.below(16));
        emit(Range{host, host});
        emit(prefix_to_range(s28, 28));
        emit(prefix_to_range(s, 24));
        emit(prefix_to_range(region, 20));
        break;
      }
      case Family::kStar: {
        // Hub aggregate with several disjoint subnets under it. The spokes
        // all fit in iSet 1; the hub is deferred to iSet 2.
        uint32_t subs[4];
        for (int i = 0; i < 4; ++i) subs[i] = region | (static_cast<uint32_t>(i * 4) << 8);
        for (uint32_t s : subs) emit(prefix_to_range(s, 24));
        emit(prefix_to_range(region, 20));
        break;
      }
      case Family::kDupGroup: {
        // ECMP/backup duplicates: the same prefix with different next hops.
        // Pairwise overlapping, so each iSet absorbs exactly one.
        const Range dup = prefix_to_range(sub24(), 24);
        for (int i = 0; i < 8; ++i) emit(dup);
        break;
      }
    }
  }
  canonicalize(rules);
  return rules;
}

}  // namespace nuevomatch
