// Reader/writer for the standard ClassBench filter format, so genuine
// ClassBench output (the benchmark the paper evaluates on) can be loaded
// directly in place of the synthetic generator:
//
//   @<sip>/<len>  <dip>/<len>  <slo> : <shi>  <dlo> : <dhi>  <proto>/<mask> ...
//
// Trailing columns (e.g. flags) are ignored; lines not starting with '@' are
// skipped. The writer emits files the reference tools accept.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

#include "common/types.hpp"

namespace nuevomatch {

[[nodiscard]] std::optional<Rule> parse_classbench_line(std::string_view line);

/// Parse a whole stream; invalid lines are counted in `skipped` (if given).
[[nodiscard]] RuleSet parse_classbench(std::istream& in, size_t* skipped = nullptr);

[[nodiscard]] std::string format_classbench_rule(const Rule& r);
void write_classbench(std::ostream& out, std::span<const Rule> rules);

}  // namespace nuevomatch
