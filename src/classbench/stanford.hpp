// Stanford-backbone-style forwarding rule-sets (paper §5.1.1 "Real-world
// rules"): ~180K single-field rules (destination IP prefixes) per router,
// with the nested prefix structure of a real enterprise backbone. Used by
// the Figure 10 / Table 2 experiments. See DESIGN.md "Substitutions".
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace nuevomatch {

/// The dataset's published scale (183,376 rules per router, §5.3.1).
inline constexpr size_t kStanfordRules = 183'376;

/// Generate one router's forwarding table: dst-IP prefixes drawn from a
/// backbone-like prefix-length histogram with parent/child nesting; all
/// other fields wildcard. `router` selects one of the four tables.
[[nodiscard]] RuleSet generate_stanford_like(int router, size_t n = kStanfordRules,
                                             uint64_t seed = 2020);

}  // namespace nuevomatch
