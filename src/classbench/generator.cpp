#include "classbench/generator.hpp"

#include <algorithm>
#include <cmath>

#include "common/prefix.hpp"
#include "common/rng.hpp"

namespace nuevomatch {

namespace {

// The generator is calibrated against paper Table 2: the fraction of rules
// one interval-scheduling pass can cover must grow with rule-set size
// (1K -> ~20%, 10K -> ~45%, 100K -> ~80%, 500K -> ~84% for one iSet). To get
// that shape we compose each rule-set from three families:
//
//   1. dst-diverse rules   — unique destination blocks; all land in iSet #1.
//   2. src-diverse rules   — destinations drawn from a small shared pool
//                            (overlapping), unique sources; land in iSet #2.
//   3. hard core           — a saturating number of rules stamped from a few
//                            low-diversity patterns; each pattern yields at
//                            most ~one rule per iSet, so the core is what the
//                            remainder classifier ends up holding.
//
// The hard core has a saturating absolute size A*n/(n+B): it dominates small
// rule-sets (poor coverage, matching Table 2's 1K row) and becomes a
// vanishing fraction of large ones (matching the 500K row).

/// Mixture knobs per application class; `variant` perturbs them like
/// different ClassBench seeds do.
struct Profile {
  // Saturating hard-core size: n_hard = min(cap*n, A*n/(n+B)).
  double core_a = 4200.0;
  double core_b = 2600.0;
  double core_cap = 0.72;
  size_t core_patterns = 48;  // distinct overlapping patterns in the core
  /// Probability that a hard-core rule gets a diverse destination port
  /// instead of its pattern's (gives iSets 2..4 a small foothold).
  double core_port_diversity = 0.12;
  /// Probability that a hard-core rule takes an overlapping port slice
  /// instead of the pattern's port range (keeps the remainder tree-separable;
  /// firewalls keep more "any" ports than ACLs do).
  double core_port_slice = 0.55;
  // dst-diverse family mixture (renormalized over the three options).
  double dst_exact = 0.25;  // /32 host inside a unique block
  double dst_p24 = 0.60;    // whole unique /24 block
  double dst_p28 = 0.15;    // /28 inside a unique block
  // Fraction of the non-core rules that go to the src-diverse family.
  double src_family = 0.18;
  double dport_exact_wellknown = 0.45;
  double dport_exact_ephemeral = 0.15;
  double dport_high_range = 0.15;  // [1024, 65535]
  double dport_subrange = 0.10;
  // remaining mass: wildcard dport
  double sport_wildcard = 0.70;
  double proto_tcp = 0.70;
  double proto_udp = 0.20;
  double proto_any = 0.07;
  // remaining mass: ICMP
};

Profile profile_for(AppClass app, int variant) {
  Profile p;
  switch (app) {
    case AppClass::kAcl:
      break;  // defaults above model ACL
    case AppClass::kFw:
      // Firewalls carry a heavier overlapping core (many "any -> service"
      // rules) and more ranges on ports.
      p.core_a = 8300.0;
      p.core_cap = 0.85;
      p.core_patterns = 32;
      p.dst_exact = 0.15;
      p.dst_p24 = 0.70;
      p.dst_p28 = 0.15;
      p.src_family = 0.22;
      p.core_port_slice = 0.25;
      p.dport_exact_wellknown = 0.25;
      p.dport_exact_ephemeral = 0.05;
      p.dport_high_range = 0.30;
      p.dport_subrange = 0.20;
      p.sport_wildcard = 0.65;
      p.proto_tcp = 0.55;
      p.proto_any = 0.20;
      break;
    case AppClass::kIpc:
      p.core_a = 6400.0;
      p.core_cap = 0.78;
      p.core_patterns = 40;
      p.dst_exact = 0.25;
      p.dst_p24 = 0.55;
      p.dst_p28 = 0.20;
      p.src_family = 0.20;
      p.core_port_slice = 0.40;
      p.dport_exact_wellknown = 0.35;
      p.dport_high_range = 0.20;
      break;
  }
  // Seed-like perturbation: deterministic in `variant`, ±25% on the core
  // size, ±20% relative shuffling of the dst mixture. This is what makes
  // ACL1..ACL5 behave like different ClassBench seed files.
  Rng vr{0xC1A55B33ull * static_cast<uint64_t>(variant + 17)};
  p.core_a *= 0.75 + 0.5 * vr.next_double();
  p.core_patterns =
      std::max<size_t>(12, static_cast<size_t>(p.core_patterns * (0.8 + 0.4 * vr.next_double())));
  const double shift = 0.8 + 0.4 * vr.next_double();
  p.dst_exact *= shift;
  p.dst_p24 *= 2.0 - shift;
  return p;
}

constexpr uint16_t kWellKnownPorts[] = {80,  443, 53,  22,  25,   110,  143,
                                        993, 995, 123, 389, 3306, 5432, 8080};

/// Distinct-block allocator: bijective-ish hash of a counter into /24 space.
uint32_t distinct_block24(uint64_t counter) {
  uint64_t z = counter * 0x9E3779B97F4A7C15ull + 0xD1B54A32D192ED03ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return static_cast<uint32_t>(z >> 40) << 8;  // 24 significant bits, /24 base
}

Range make_dport(const Profile& p, Rng& rng) {
  const double u = rng.next_double();
  double acc = p.dport_exact_wellknown;
  if (u < acc) {
    const uint16_t port = kWellKnownPorts[rng.below(std::size(kWellKnownPorts))];
    return Range{port, port};
  }
  acc += p.dport_exact_ephemeral;
  if (u < acc) {
    const auto port = static_cast<uint32_t>(rng.between(1024, 65535));
    return Range{port, port};
  }
  acc += p.dport_high_range;
  if (u < acc) return Range{1024, 65535};
  acc += p.dport_subrange;
  if (u < acc) {
    const auto lo = static_cast<uint32_t>(rng.between(0, 60000));
    const auto hi = static_cast<uint32_t>(std::min<uint64_t>(65535, lo + rng.between(1, 4096)));
    return Range{lo, hi};
  }
  return full_range(kDstPort);
}

Range make_sport(const Profile& p, Rng& rng) {
  if (rng.chance(p.sport_wildcard)) return full_range(kSrcPort);
  if (rng.chance(0.6)) return Range{1024, 65535};
  const auto port = static_cast<uint32_t>(rng.between(0, 65535));
  return Range{port, port};
}

Range make_proto(const Profile& p, Rng& rng) {
  const double u = rng.next_double();
  if (u < p.proto_tcp) return Range{6, 6};
  if (u < p.proto_tcp + p.proto_udp) return Range{17, 17};
  if (u < p.proto_tcp + p.proto_udp + p.proto_any) return full_range(kProto);
  return Range{1, 1};  // ICMP
}

/// Unique destination block from the profile's exact//24//28 mixture.
Range make_diverse_dst(const Profile& p, Rng& rng, uint64_t& counter) {
  const uint32_t block = distinct_block24(counter++);
  const double total = p.dst_exact + p.dst_p24 + p.dst_p28;
  const double u = rng.next_double() * total;
  if (u < p.dst_exact) {
    const uint32_t host = block | static_cast<uint32_t>(rng.below(256));
    return Range{host, host};
  }
  if (u < p.dst_exact + p.dst_p24) return prefix_to_range(block, 24);
  return prefix_to_range(block | static_cast<uint32_t>(rng.below(256)), 28);
}

}  // namespace

RuleSet generate_classbench(AppClass app, int variant, size_t n, uint64_t seed) {
  const Profile p = profile_for(app, variant);
  Rng rng{seed ^ (0xABCDEF12345ull * static_cast<uint64_t>(variant + 1)) ^
          static_cast<uint64_t>(app)};
  RuleSet rules;
  rules.reserve(n);

  const double nd = static_cast<double>(n);
  const auto n_hard = std::min<size_t>(
      static_cast<size_t>(p.core_cap * nd), static_cast<size_t>(p.core_a * nd / (nd + p.core_b)));
  const size_t n_src_family =
      static_cast<size_t>(p.src_family * static_cast<double>(n - n_hard));
  const size_t n_dst_family = n - n_hard - n_src_family;

  // --- hard core: overlapping patterns, low per-field diversity -----------
  // These rules heavily overlap in every single field, so interval scheduling
  // can pick only ~one of them per pattern per iSet — but they remain
  // separable by multi-dimensional cuts (real firewall cores are: rules share
  // address scopes yet differ in port ranges), so the remainder classifier
  // stays a functioning decision tree rather than one giant leaf.
  struct Pattern {
    Range src, dst, dport;
    Range proto;
  };
  const size_t n_patterns = std::max(p.core_patterns, n_hard / 12);
  std::vector<Pattern> patterns;
  patterns.reserve(n_patterns);
  for (size_t i = 0; i < n_patterns; ++i) {
    Pattern pat;
    const int dst_len = static_cast<int>(rng.between(8, 16));
    pat.dst = prefix_to_range(rng.next_u32(), dst_len);
    pat.src = rng.chance(0.6) ? full_range(kSrcIp)
                              : prefix_to_range(rng.next_u32(), static_cast<int>(rng.between(8, 24)));
    pat.dport = rng.chance(0.5) ? full_range(kDstPort) : Range{0, 1023};
    pat.proto = rng.chance(0.5) ? full_range(kProto) : Range{6, 6};
    patterns.push_back(pat);
  }
  // Overlapping-but-distinct port slices: mutually overlapping (stride is
  // half the width) so iSets cannot absorb them, yet with distinct endpoints
  // a split node can tell them apart.
  const auto core_dport_slice = [&rng]() {
    const uint32_t width = 256u << rng.below(3);  // 256/512/1024
    const uint32_t lo = static_cast<uint32_t>(rng.below(120)) * (width / 2);
    return Range{lo, std::min<uint32_t>(65535, lo + width - 1)};
  };
  // The core is generated first (so rule-set composition is stable in n) but
  // emitted LAST: real ACLs place specific rules above broad catch-all rules,
  // so the wildcard-heavy core carries the numerically largest priorities.
  std::vector<Rule> core;
  core.reserve(n_hard);
  for (size_t i = 0; i < n_hard; ++i) {
    const Pattern& pat = patterns[rng.below(patterns.size())];
    Rule r;
    r.field[kSrcIp] = pat.src;
    r.field[kDstIp] = pat.dst;
    r.field[kSrcPort] = make_sport(p, rng);
    r.field[kDstPort] = rng.chance(p.core_port_diversity)  ? make_dport(p, rng)
                        : rng.chance(p.core_port_slice)    ? core_dport_slice()
                                                           : pat.dport;
    r.field[kProto] = pat.proto;
    r.action = static_cast<int32_t>(rng.below(4));
    core.push_back(r);
  }

  // --- src-diverse family: overlapping destinations, unique sources -------
  // Models "from host X to any/service" rules. A second iSet over the source
  // field picks all of them up.
  std::vector<Range> shared_dsts;  // small pool -> heavy dst overlap
  const size_t n_shared = std::max<size_t>(8, p.core_patterns / 2);
  for (size_t i = 0; i < n_shared; ++i) {
    shared_dsts.push_back(rng.chance(0.3)
                              ? full_range(kDstIp)
                              : prefix_to_range(rng.next_u32(),
                                                static_cast<int>(rng.between(8, 16))));
  }
  uint64_t block_counter = seed * 1315423911ull + 0x51ull;
  for (size_t i = 0; i < n_src_family; ++i) {
    Rule r;
    // Unique source prefix (ClassBench address fields are always prefixes):
    // half whole /24 blocks, half /28 or /32 hosts inside a fresh block.
    const uint32_t sblock = distinct_block24(block_counter++) | 0x80000000u;
    if (rng.chance(0.5)) {
      r.field[kSrcIp] = prefix_to_range(sblock, 24);
    } else {
      const uint32_t host = sblock | static_cast<uint32_t>(rng.below(256));
      r.field[kSrcIp] = rng.chance(0.5) ? Range{host, host} : prefix_to_range(host, 28);
    }
    r.field[kDstIp] = shared_dsts[rng.below(shared_dsts.size())];
    r.field[kSrcPort] = make_sport(p, rng);
    r.field[kDstPort] = make_dport(p, rng);
    r.field[kProto] = make_proto(p, rng);
    r.action = static_cast<int32_t>(rng.below(4));
    rules.push_back(r);
  }

  // --- dst-diverse family: unique destination blocks ----------------------
  for (size_t i = 0; i < n_dst_family; ++i) {
    Rule r;
    r.field[kDstIp] = make_diverse_dst(p, rng, block_counter);
    r.field[kSrcIp] = rng.chance(0.65)
                          ? full_range(kSrcIp)
                          : prefix_to_range(rng.next_u32(),
                                            static_cast<int>(rng.between(12, 20)));
    r.field[kSrcPort] = make_sport(p, rng);
    r.field[kDstPort] = make_dport(p, rng);
    r.field[kProto] = make_proto(p, rng);
    r.action = static_cast<int32_t>(rng.below(4));
    rules.push_back(r);
  }

  // Specific families first (higher priority), catch-all core last — then
  // canonical numbering.
  rules.insert(rules.end(), core.begin(), core.end());
  canonicalize(rules);
  return rules;
}

std::vector<std::pair<AppClass, int>> paper_suite() {
  std::vector<std::pair<AppClass, int>> suite;
  for (int v = 1; v <= 5; ++v) suite.emplace_back(AppClass::kAcl, v);
  for (int v = 1; v <= 5; ++v) suite.emplace_back(AppClass::kFw, v);
  for (int v = 1; v <= 2; ++v) suite.emplace_back(AppClass::kIpc, v);
  return suite;
}

std::string ruleset_name(AppClass app, int variant) {
  const char* base = app == AppClass::kAcl ? "ACL" : app == AppClass::kFw ? "FW" : "IPC";
  return base + std::to_string(variant);
}

RuleSet generate_low_diversity(size_t n, int values_per_field, uint64_t seed) {
  Rng rng{seed};
  std::array<std::vector<uint32_t>, kNumFields> pools;
  for (int f = 0; f < kNumFields; ++f) {
    for (int v = 0; v < values_per_field; ++v)
      pools[static_cast<size_t>(f)].push_back(
          static_cast<uint32_t>(rng.below(kFieldDomain[static_cast<size_t>(f)] + 1)));
  }
  RuleSet rules;
  rules.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Rule r;
    for (int f = 0; f < kNumFields; ++f) {
      const uint32_t v =
          pools[static_cast<size_t>(f)][rng.below(pools[static_cast<size_t>(f)].size())];
      r.field[static_cast<size_t>(f)] = Range{v, v};  // exact match, no ranges (§5.3.3)
    }
    rules.push_back(r);
  }
  canonicalize(rules);
  return rules;
}

RuleSet blend_low_diversity(const RuleSet& base, double fraction, uint64_t seed) {
  Rng rng{seed};
  const auto n_replace = static_cast<size_t>(fraction * static_cast<double>(base.size()));
  RuleSet low = generate_low_diversity(n_replace, 8, seed ^ 0xBEEF);
  RuleSet out = base;
  // Replace randomly selected positions, keeping the total size (§5.3.3).
  std::vector<uint32_t> idx(base.size());
  for (uint32_t i = 0; i < idx.size(); ++i) idx[i] = i;
  for (size_t i = 0; i < n_replace && i + 1 < idx.size(); ++i) {
    const size_t j = i + rng.below(idx.size() - i);
    std::swap(idx[i], idx[j]);
  }
  for (size_t i = 0; i < n_replace; ++i) {
    Rule r = low[i];
    out[idx[i]] = r;
  }
  canonicalize(out);
  return out;
}

}  // namespace nuevomatch
