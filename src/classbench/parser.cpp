#include "classbench/parser.hpp"

#include <charconv>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/prefix.hpp"

namespace nuevomatch {

namespace {

void skip_ws(std::string_view& s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
}

bool take_number(std::string_view& s, uint32_t& out) {
  skip_ws(s);
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  if (ec != std::errc{}) return false;
  s.remove_prefix(static_cast<size_t>(ptr - s.data()));
  return true;
}

bool take_literal(std::string_view& s, char c) {
  skip_ws(s);
  if (s.empty() || s.front() != c) return false;
  s.remove_prefix(1);
  return true;
}

bool take_prefix(std::string_view& s, Range& out) {
  skip_ws(s);
  size_t i = 0;
  while (i < s.size() && s[i] != '/' && s[i] != ' ' && s[i] != '\t') ++i;
  const auto addr = parse_ipv4(s.substr(0, i));
  if (!addr) return false;
  s.remove_prefix(i);
  if (!take_literal(s, '/')) return false;
  uint32_t len = 0;
  if (!take_number(s, len) || len > 32) return false;
  out = prefix_to_range(*addr, static_cast<int>(len));
  return true;
}

bool take_port_range(std::string_view& s, Range& out) {
  uint32_t lo = 0;
  uint32_t hi = 0;
  if (!take_number(s, lo)) return false;
  if (!take_literal(s, ':')) return false;
  if (!take_number(s, hi)) return false;
  if (lo > hi || hi > 0xFFFF) return false;
  out = Range{lo, hi};
  return true;
}

}  // namespace

std::optional<Rule> parse_classbench_line(std::string_view line) {
  skip_ws(line);
  if (line.empty() || line.front() != '@') return std::nullopt;
  line.remove_prefix(1);

  Rule r;
  if (!take_prefix(line, r.field[kSrcIp])) return std::nullopt;
  if (!take_prefix(line, r.field[kDstIp])) return std::nullopt;
  if (!take_port_range(line, r.field[kSrcPort])) return std::nullopt;
  if (!take_port_range(line, r.field[kDstPort])) return std::nullopt;

  uint32_t proto = 0;
  uint32_t mask = 0;
  if (!take_number(line, proto)) return std::nullopt;
  if (!take_literal(line, '/')) return std::nullopt;
  // Protocol masks are written in hex (0xFF / 0x00) by ClassBench.
  skip_ws(line);
  if (line.size() >= 2 && line[0] == '0' && (line[1] == 'x' || line[1] == 'X')) {
    line.remove_prefix(2);
    const auto [ptr, ec] =
        std::from_chars(line.data(), line.data() + line.size(), mask, 16);
    if (ec != std::errc{}) return std::nullopt;
    line.remove_prefix(static_cast<size_t>(ptr - line.data()));
  } else if (!take_number(line, mask)) {
    return std::nullopt;
  }
  r.field[kProto] = (mask & 0xFF) == 0xFF ? Range{proto & 0xFF, proto & 0xFF}
                                          : full_range(kProto);
  return r;  // trailing columns (flags) intentionally ignored
}

RuleSet parse_classbench(std::istream& in, size_t* skipped) {
  RuleSet rules;
  size_t bad = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (auto r = parse_classbench_line(line)) {
      rules.push_back(*r);
    } else {
      ++bad;
    }
  }
  if (skipped) *skipped = bad;
  canonicalize(rules);
  return rules;
}

std::string format_classbench_rule(const Rule& r) {
  std::ostringstream os;
  const auto emit_prefix = [&](const Range& rg) {
    const auto len = range_to_prefix_len(rg);
    os << format_ipv4(rg.lo) << '/' << (len ? *len : 0);
  };
  os << '@';
  emit_prefix(r.field[kSrcIp]);
  os << '\t';
  emit_prefix(r.field[kDstIp]);
  os << '\t' << r.field[kSrcPort].lo << " : " << r.field[kSrcPort].hi;
  os << '\t' << r.field[kDstPort].lo << " : " << r.field[kDstPort].hi;
  const bool exact = r.field[kProto].is_exact();
  os << '\t' << (exact ? r.field[kProto].lo : 0u) << "/0x" << (exact ? "FF" : "00");
  return os.str();
}

void write_classbench(std::ostream& out, std::span<const Rule> rules) {
  for (const Rule& r : rules) out << format_classbench_rule(r) << '\n';
}

}  // namespace nuevomatch
