// ClassBench-style rule-set generation (paper Section 5.1.1).
//
// ClassBench [Taylor & Turner '07] produces rule-sets whose statistical
// structure follows one of three application classes: Access Control Lists
// (ACL), Firewalls (FW) and IP Chains (IPC). The published seeds are not
// shipped here; this generator reproduces the *structural* properties the
// evaluation depends on (see DESIGN.md "Substitutions"):
//
//   * a small "core" of heavily-overlapping wildcard-ish patterns whose
//     absolute size saturates as the rule-set grows — which is why iSet
//     coverage improves with rule-set size (paper Table 2);
//   * a large body of distinct, specific rules (unique destination prefixes,
//     exact or narrow ports) providing the high value-diversity that RQ-RMI
//     exploits (paper §3.7);
//   * per-application mixtures of prefix lengths, port classes and protocols
//     (FW = more wildcards/ranges, ACL = more exact matches, IPC = between).
//
// Rule-sets produced by the real ClassBench tool can be loaded through
// parser.hpp instead — the two sources are interchangeable downstream.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace nuevomatch {

enum class AppClass { kAcl, kFw, kIpc };

/// Generate `n` rules of the given application class. `variant` (1-based)
/// perturbs the seed mixtures the way different ClassBench seeds do.
/// Output is canonical: id = index = priority.
[[nodiscard]] RuleSet generate_classbench(AppClass app, int variant, size_t n,
                                          uint64_t seed = 1);

/// The paper's 12-set suite: ACL1-5, FW1-5, IPC1-2 (appendix naming).
[[nodiscard]] std::vector<std::pair<AppClass, int>> paper_suite();
[[nodiscard]] std::string ruleset_name(AppClass app, int variant);

/// Low-diversity rule-set built as a Cartesian product of a few values per
/// field (paper Table 3 / §5.3.3) — the adversarial input for iSets.
[[nodiscard]] RuleSet generate_low_diversity(size_t n, int values_per_field,
                                             uint64_t seed = 1);

/// Replace a random `fraction` of `base` with low-diversity rules, keeping
/// the total size (the paper's Table 3 blending experiment).
[[nodiscard]] RuleSet blend_low_diversity(const RuleSet& base, double fraction,
                                          uint64_t seed = 1);

}  // namespace nuevomatch
