// §5.3.5 "Performance with more fields": validation cost grows almost
// linearly with the number of fields — the paper measures 25ns at 1 field
// up to 180ns at 40 fields (OpenFlow 1.4 allows 41).
//
// The 5-tuple pipeline is compile-time fixed, so this microbenchmark
// reproduces the validation kernel over wide synthetic rules, exactly the
// range-containment loop IsetIndex::validate performs per candidate.
#include <benchmark/benchmark.h>

#include <vector>

#include "bench_common.hpp"
#include "common/rng.hpp"

namespace {

using namespace nuevomatch;

struct WideRule {
  std::vector<uint32_t> lo, hi;
};

/// Validation kernel: conjunctive range containment over `n_fields`.
bool validate(const WideRule& r, const std::vector<uint32_t>& pkt) {
  for (size_t f = 0; f < r.lo.size(); ++f) {
    if (pkt[f] < r.lo[f] || pkt[f] > r.hi[f]) return false;
  }
  return true;
}

void BM_ValidationFields(benchmark::State& state) {
  const auto n_fields = static_cast<size_t>(state.range(0));
  Rng rng{17};
  // A pool of candidate rules and matching packets (the common case in the
  // paper's measurement is a positive match that must scan every field).
  constexpr size_t kPool = 256;
  std::vector<WideRule> rules(kPool);
  std::vector<std::vector<uint32_t>> pkts(kPool, std::vector<uint32_t>(n_fields));
  for (size_t i = 0; i < kPool; ++i) {
    rules[i].lo.resize(n_fields);
    rules[i].hi.resize(n_fields);
    for (size_t f = 0; f < n_fields; ++f) {
      const uint32_t lo = rng.next_u32() / 2;
      rules[i].lo[f] = lo;
      rules[i].hi[f] = lo + rng.next_u32() / 2;
      pkts[i][f] = lo + (rules[i].hi[f] - lo) / 2;
    }
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(validate(rules[i], pkts[i]));
    i = (i + 1) & (kPool - 1);
  }
  state.SetLabel(std::to_string(n_fields) + " fields");
}

BENCHMARK(BM_ValidationFields)->Arg(1)->Arg(5)->Arg(10)->Arg(20)->Arg(30)->Arg(40);

}  // namespace

int main(int argc, char** argv) {
  nuevomatch::bench::print_header("Sec 5.3.5: validation time vs number of fields",
                                  "paper: ~25ns @1 field to ~180ns @40 fields, ~linear");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
