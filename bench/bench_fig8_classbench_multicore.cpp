// Figure 8: two-core latency and throughput speedups on ClassBench.
//
// Execution model (paper §4/§5.1): NuevoMatch runs its RQ-RMI iSets on one
// core and the remainder classifier on the other, in batches of 128;
// baselines run two independent instances with the input split between them
// (near-linear scaling, per the paper).
//
// This container exposes ONE hardware core, so the two-core numbers are
// PROJECTED from separately measured phases:
//     nm  2-core:  t_batch = 128 * max(t_isets, t_remainder)
//     base 2-core: throughput = 2 / t_base;   latency = 128 * t_base
// (each baseline instance processes whole batches of its own stream).
// The projection model and its validation are described in EXPERIMENTS.md;
// results are therefore shape-accurate rather than cycle-accurate.
// Paper @500K: latency GM 2.7x/4.4x/2.6x, throughput GM 1.3x/2.2x/1.2x.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

using namespace nuevomatch;
using namespace nuevomatch::bench;

int main() {
  const Scale s = bench_scale();
  print_header("Figure 8: ClassBench two-core speedups (projected from phases)",
               "paper Fig. 8 (@500K lat GM 2.7/4.4/2.6; tput GM 1.3/2.2/1.2)");

  const std::vector<std::string> baselines{"cutsplit", "neurocuts", "tuplemerge"};
  std::printf("%-8s | %-36s | %-36s\n", "ruleset", "latency speedup (cs/nc/tm)",
              "throughput speedup (cs/nc/tm)");

  std::vector<std::vector<double>> lat(baselines.size()), tput(baselines.size());
  for (const auto& [app, variant] : s.suite) {
    const RuleSet rules = generate_classbench(app, variant, s.large_n, 1);
    const auto trace = uniform_trace(rules, s);
    std::printf("%-8s |", ruleset_name(app, variant).c_str());
    std::vector<double> row_lat, row_tput;
    for (size_t b = 0; b < baselines.size(); ++b) {
      auto base = make_baseline(baselines[b], s);
      base->build(rules);
      const double t_base = measure_ns_per_packet(*base, trace, s.reps);

      auto nm = make_nm(baselines[b], s);
      nm->build(rules);
      // Phase times: iSet path and remainder path measured separately
      // (parallel mode cannot use early termination, paper §4).
      const double t_isets = measure_ns_per_packet_fn(
          [&](const Packet& p) { return nm->match_isets(p).rule_id; }, trace, s.reps);
      const double t_rem = measure_ns_per_packet_fn(
          [&](const Packet& p) { return nm->remainder().match(p).rule_id; }, trace,
          s.reps);
      const double t_nm2 = std::max(t_isets, t_rem);

      row_lat.push_back(t_base / t_nm2);        // 128*t_base vs 128*t_nm2
      row_tput.push_back(t_base / (2 * t_nm2)); // 2/t_base vs 1/t_nm2
      lat[b].push_back(row_lat.back());
      tput[b].push_back(row_tput.back());
    }
    for (double v : row_lat) std::printf(" %10.2fx", v);
    std::printf(" |");
    for (double v : row_tput) std::printf(" %10.2fx", v);
    std::printf("\n");
    std::fflush(stdout);
  }
  std::printf("%-8s |", "GM");
  for (size_t b = 0; b < baselines.size(); ++b)
    std::printf(" %10.2fx", geometric_mean(lat[b]));
  std::printf(" |");
  for (size_t b = 0; b < baselines.size(); ++b)
    std::printf(" %10.2fx", geometric_mean(tput[b]));
  std::printf("\n");
  return 0;
}
