// Sections 3.1-3.2 quantified: why the classic RMI cannot index packet
// classification rules directly.
//
//   1. Range enumeration blow-up: the key-index pairs an exact-match RMI
//      must materialize per rule-set and field (including the paper's
//      46,592-pair single-rule example).
//   2. Where enumeration IS feasible (narrow port ranges), RMI-over-
//      enumerated-keys vs RQ-RMI-over-intervals: build input size, training
//      time, model size, and certified error.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "rmi/rmi.hpp"

using namespace nuevomatch;
using namespace nuevomatch::bench;

int main() {
  const Scale s = bench_scale();
  print_header("Ablation: classic RMI vs RQ-RMI (Sec 3.1-3.2)",
               "paper Sec 3.2 (exponential enumeration; RQ-RMI avoids it)");

  // --- the paper's single-rule example --------------------------------------
  {
    Rule r;
    r.field[kDstIp] = Range{0, 255};      // 0.0.0.*
    r.field[kDstPort] = Range{10, 100};   // 91 ports
    r.field[kProto] = Range{6, 7};        // TCP/UDP
    const int fields[] = {kDstIp, kDstPort, kProto};
    std::printf("paper example rule (dst 0.0.0.*, port 10-100, proto TCP/UDP):\n"
                "  multi-field key-index pairs required: %llu (paper: 46,592)\n\n",
                static_cast<unsigned long long>(rmi::enumeration_cost(r, fields)));
  }

  // --- per-field enumeration cost on ClassBench rule-sets --------------------
  const size_t n = s.full ? 100'000 : 10'000;
  const RuleSet rules = generate_classbench(AppClass::kAcl, 1, n, 3);
  std::printf("%-10s | %16s %18s\n", "field", "pairs to learn", "vs #rules");
  const char* names[] = {"srcIP", "dstIP", "srcPort", "dstPort", "proto"};
  for (int f = 0; f < kNumFields; ++f) {
    const uint64_t cost = rmi::enumeration_cost(rules, f);
    std::printf("%-10s | %16llu %17.1fx\n", names[f],
                static_cast<unsigned long long>(cost),
                static_cast<double>(cost) / static_cast<double>(rules.size()));
  }

  // --- feasible case: narrow disjoint port ranges ----------------------------
  Rng rng{11};
  RuleSet port_rules;
  uint32_t at = 0;
  while (port_rules.size() < 400 && at < 60'000) {
    Rule r;
    const uint32_t len = 1 + static_cast<uint32_t>(rng.below(120));
    r.field[kDstPort] = Range{at, std::min(at + len - 1, 65'535u)};
    at += len + 1 + static_cast<uint32_t>(rng.below(40));
    port_rules.push_back(r);
  }
  canonicalize(port_rules);

  const uint64_t pairs_needed = rmi::enumeration_cost(port_rules, kDstPort);
  const auto pairs = rmi::enumerate_range_keys(port_rules, kDstPort, 1u << 22);

  uint64_t t0 = now_ns();
  rmi::Rmi rmi_model;
  rmi::RmiConfig rcfg;
  rcfg.stage_widths = {1, 8};
  rmi_model.build(pairs, rcfg);
  const double rmi_ms = static_cast<double>(now_ns() - t0) / 1e6;

  std::vector<rqrmi::KeyInterval> ivs;
  const uint64_t domain = kFieldDomain[kDstPort];
  for (const Rule& r : port_rules) {
    ivs.push_back(rqrmi::KeyInterval{
        rqrmi::normalize_key_exact(r.field[kDstPort].lo, domain),
        rqrmi::normalize_key_exact(static_cast<uint64_t>(r.field[kDstPort].hi) + 1, domain),
        r.id});
  }
  t0 = now_ns();
  rqrmi::RqRmi rq_model;
  rqrmi::RqRmiConfig qcfg;
  qcfg.stage_widths = {1, 8};
  rq_model.build(std::move(ivs), qcfg);
  const double rq_ms = static_cast<double>(now_ns() - t0) / 1e6;

  std::printf("\nfeasible single-field case (%zu disjoint port ranges):\n",
              port_rules.size());
  std::printf("%-22s | %12s %12s %12s %10s\n", "model", "train input", "train ms",
              "model B", "max err");
  std::printf("%-22s | %12llu %12.1f %12zu %10u\n", "RMI (enumerated keys)",
              static_cast<unsigned long long>(pairs_needed), rmi_ms,
              rmi_model.memory_bytes(), rmi_model.max_search_error());
  std::printf("%-22s | %12zu %12.1f %12zu %10u\n", "RQ-RMI (intervals)",
              port_rules.size(), rq_ms, rq_model.memory_bytes(),
              rq_model.max_search_error());
  std::printf("\nRQ-RMI consumed %.0fx less training input for the same index;\n"
              "for wildcard IP fields enumeration is outright infeasible (rows above)\n",
              static_cast<double>(pairs_needed) / static_cast<double>(port_rules.size()));
  return 0;
}
