// Table 1: submodel inference time per lookup with serial / SSE / AVX
// kernels ("Submodel acceleration via vectorization", paper §4).
// Paper reports 126 / 62 / 49 ns per full RQ-RMI lookup on Xeon Silver 4116.
//
// Extended beyond the paper: the per-key kernels vectorize *within* one
// submodel, the batched kernels (rqrmi/kernel.hpp) vectorize *across*
// packets — one SIMD lane per key. The serial/SSE/AVX x per-key/batched-8/
// batched-32 grid below measures the cross-packet speedup on the same
// trained 100K-interval model and records it in BENCH_table1.json.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "rqrmi/model.hpp"

namespace {

using namespace nuevomatch;
using namespace nuevomatch::rqrmi;

/// A trained [1,8,256] model over 100K synthetic intervals (the paper's
/// large-rule-set configuration).
const RqRmi& shared_model() {
  static const RqRmi model = [] {
    Rng rng{1};
    std::vector<KeyInterval> ivs;
    const size_t n = 100'000;
    double x = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double w = (0.5 + rng.next_double()) / static_cast<double>(n);
      ivs.push_back(KeyInterval{x, x + w * 0.8, static_cast<uint32_t>(i)});
      x += w;
    }
    for (auto& iv : ivs) {  // normalize to [0,1)
      iv.lo /= x;
      iv.hi /= x;
    }
    RqRmiConfig cfg;
    cfg.stage_widths = {1, 8, 256};
    RqRmi m;
    m.build(std::move(ivs), cfg);
    return m;
  }();
  return model;
}

constexpr size_t kKeyPool = 4096;  // power of two; wraps with a mask

std::vector<float> make_keys() {
  Rng rng{7};
  std::vector<float> keys(kKeyPool);
  for (float& k : keys) k = static_cast<float>(rng.next_double());
  return keys;
}

void bench_lookup(benchmark::State& state, SimdLevel level) {
  if (!simd_level_available(level)) {
    state.SkipWithError("SIMD level not available on this CPU/build");
    return;
  }
  const RqRmi& model = shared_model();
  const auto keys = make_keys();
  size_t i = 0;
  for (auto _ : state) {
    const auto pred = model.lookup(keys[i], level);
    benchmark::DoNotOptimize(pred);
    i = (i + 1) & (kKeyPool - 1);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("full 3-stage RQ-RMI lookup, per-key");
}

void bench_lookup_batch(benchmark::State& state, SimdLevel level, size_t batch) {
  if (!simd_level_available(level)) {
    state.SkipWithError("SIMD level not available on this CPU/build");
    return;
  }
  if (batch_level(level) != level) {
    // e.g. kAvx on an AVX-without-AVX2 CPU would silently measure the SSE2
    // kernel; skip rather than record a mislabeled row.
    state.SkipWithError("batch kernel for this level not available; would "
                        "degrade to a narrower kernel");
    return;
  }
  const RqRmi& model = shared_model();
  const auto keys = make_keys();
  std::vector<Prediction> preds(batch);
  size_t i = 0;
  for (auto _ : state) {
    model.lookup_batch(std::span<const float>{keys.data() + i, batch},
                       std::span<Prediction>{preds}, level);
    benchmark::DoNotOptimize(preds.data());
    i = (i + batch) & (kKeyPool - 1);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * static_cast<int64_t>(batch)));
  state.SetLabel("cross-packet lanes, batch=" + std::to_string(batch));
}

void BM_Inference_Serial(benchmark::State& s) { bench_lookup(s, SimdLevel::kSerial); }
void BM_Inference_SSE(benchmark::State& s) { bench_lookup(s, SimdLevel::kSse); }
void BM_Inference_AVX(benchmark::State& s) { bench_lookup(s, SimdLevel::kAvx); }
void BM_Batch8_Serial(benchmark::State& s) { bench_lookup_batch(s, SimdLevel::kSerial, 8); }
void BM_Batch8_SSE(benchmark::State& s) { bench_lookup_batch(s, SimdLevel::kSse, 8); }
void BM_Batch8_AVX(benchmark::State& s) { bench_lookup_batch(s, SimdLevel::kAvx, 8); }
void BM_Batch32_Serial(benchmark::State& s) { bench_lookup_batch(s, SimdLevel::kSerial, 32); }
void BM_Batch32_SSE(benchmark::State& s) { bench_lookup_batch(s, SimdLevel::kSse, 32); }
void BM_Batch32_AVX(benchmark::State& s) { bench_lookup_batch(s, SimdLevel::kAvx, 32); }

BENCHMARK(BM_Inference_Serial);
BENCHMARK(BM_Inference_SSE);
BENCHMARK(BM_Inference_AVX);
BENCHMARK(BM_Batch8_Serial);
BENCHMARK(BM_Batch8_SSE);
BENCHMARK(BM_Batch8_AVX);
BENCHMARK(BM_Batch32_Serial);
BENCHMARK(BM_Batch32_SSE);
BENCHMARK(BM_Batch32_AVX);

// ---------------------------------------------------------------------------
// JSON emission: one steady-clock measurement per grid cell, written as
// BENCH_table1.json (keys/sec + speedup of each batched mode over the
// per-key kernel at the same SIMD level).
// ---------------------------------------------------------------------------

double measure_keys_per_sec(SimdLevel level, size_t batch) {
  const RqRmi& model = shared_model();
  const auto keys = make_keys();
  std::vector<Prediction> preds(batch > 0 ? batch : 1);
  constexpr uint64_t kMinNs = 200'000'000;  // 0.2 s per cell
  uint64_t keys_done = 0;
  // Warm-up pass.
  for (size_t i = 0; i < kKeyPool; ++i) benchmark::DoNotOptimize(model.lookup(keys[i], level));
  const uint64_t t0 = bench::now_ns();
  uint64_t t1 = t0;
  size_t i = 0;
  while (t1 - t0 < kMinNs) {
    for (int rep = 0; rep < 64; ++rep) {
      if (batch == 0) {
        const auto pred = model.lookup(keys[i], level);
        benchmark::DoNotOptimize(pred);
        keys_done += 1;
        i = (i + 1) & (kKeyPool - 1);
      } else {
        model.lookup_batch(std::span<const float>{keys.data() + i, batch},
                           std::span<Prediction>{preds}, level);
        benchmark::DoNotOptimize(preds.data());
        keys_done += batch;
        i = (i + batch) & (kKeyPool - 1);
      }
    }
    t1 = bench::now_ns();
  }
  return static_cast<double>(keys_done) / (static_cast<double>(t1 - t0) * 1e-9);
}

void emit_json() {
  const std::vector<SimdLevel> levels{SimdLevel::kSerial, SimdLevel::kSse,
                                      SimdLevel::kAvx};
  const std::vector<size_t> batches{0, 8, 32};  // 0 = per-key
  bench::BenchJson json{"table1_vectorization"};
  std::printf("\n%-12s %-12s %14s %12s %10s\n", "level", "mode", "keys/sec",
              "ns/key", "vs perkey");
  for (const SimdLevel level : levels) {
    if (!simd_level_available(level)) continue;
    double perkey_kps = 0.0;
    for (const size_t batch : batches) {
      // Don't record a row labelled with a kernel that would not actually
      // run (kAvx batching needs AVX2; AVX-only CPUs degrade to SSE2).
      if (batch != 0 && batch_level(level) != level) continue;
      const double kps = measure_keys_per_sec(level, batch);
      if (batch == 0) perkey_kps = kps;
      const std::string mode = batch == 0 ? "per-key" : "batched-" + std::to_string(batch);
      const double speedup = batch == 0 ? 1.0 : kps / perkey_kps;
      std::printf("%-12s %-12s %14.3e %12.2f %9.2fx\n", to_string(level).c_str(),
                  mode.c_str(), kps, 1e9 / kps, speedup);
      json.row()
          .set("level", to_string(level))
          .set("mode", mode)
          .set("batch", batch)
          .set("keys_per_sec", kps)
          .set("ns_per_key", 1e9 / kps)
          .set("speedup_vs_perkey", speedup);
    }
  }
  if (json.write("BENCH_table1.json")) {
    std::printf("\nwrote BENCH_table1.json\n");
  } else {
    std::fprintf(stderr, "failed to write BENCH_table1.json\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  // --table_only: skip the google-benchmark loops, measure the grid and
  // write BENCH_table1.json only. Conversely, an interactive
  // --benchmark_filter/--benchmark_list_tests inspection run must not spend
  // ~2s on the grid nor clobber an existing BENCH_table1.json.
  bool table_only = false;
  bool inspecting = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a{argv[i]};
    if (a == "--table_only") table_only = true;
    if (a.rfind("--benchmark_filter", 0) == 0 ||
        a.rfind("--benchmark_list_tests", 0) == 0)
      inspecting = true;
  }
  nuevomatch::bench::print_header(
      "Table 1: submodel vectorization (+ cross-packet batching)",
      "paper Table 1 (126/62/49 ns serial/SSE/AVX) + batched extension");
  if (table_only) {
    emit_json();
    return 0;
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  if (!inspecting) emit_json();
  return 0;
}
