// Table 1: submodel inference time per lookup with serial / SSE / AVX
// kernels ("Submodel acceleration via vectorization", paper §4).
// Paper reports 126 / 62 / 49 ns per full RQ-RMI lookup on Xeon Silver 4116.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "rqrmi/model.hpp"

namespace {

using namespace nuevomatch;
using namespace nuevomatch::rqrmi;

/// A trained [1,8,256] model over 100K synthetic intervals (the paper's
/// large-rule-set configuration).
const RqRmi& shared_model() {
  static const RqRmi model = [] {
    Rng rng{1};
    std::vector<KeyInterval> ivs;
    const size_t n = 100'000;
    double x = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double w = (0.5 + rng.next_double()) / static_cast<double>(n);
      ivs.push_back(KeyInterval{x, x + w * 0.8, static_cast<uint32_t>(i)});
      x += w;
    }
    for (auto& iv : ivs) {  // normalize to [0,1)
      iv.lo /= x;
      iv.hi /= x;
    }
    RqRmiConfig cfg;
    cfg.stage_widths = {1, 8, 256};
    RqRmi m;
    m.build(std::move(ivs), cfg);
    return m;
  }();
  return model;
}

void bench_lookup(benchmark::State& state, SimdLevel level) {
  if (!simd_level_available(level)) {
    state.SkipWithError("SIMD level not available on this CPU/build");
    return;
  }
  const RqRmi& model = shared_model();
  Rng rng{7};
  std::vector<float> keys(4096);
  for (float& k : keys) k = static_cast<float>(rng.next_double());
  size_t i = 0;
  for (auto _ : state) {
    const auto pred = model.lookup(keys[i], level);
    benchmark::DoNotOptimize(pred);
    i = (i + 1) & 4095;
  }
  state.SetLabel("full 3-stage RQ-RMI lookup");
}

void BM_Inference_Serial(benchmark::State& s) { bench_lookup(s, SimdLevel::kSerial); }
void BM_Inference_SSE(benchmark::State& s) { bench_lookup(s, SimdLevel::kSse); }
void BM_Inference_AVX(benchmark::State& s) { bench_lookup(s, SimdLevel::kAvx); }

BENCHMARK(BM_Inference_Serial);
BENCHMARK(BM_Inference_SSE);
BENCHMARK(BM_Inference_AVX);

}  // namespace

int main(int argc, char** argv) {
  nuevomatch::bench::print_header("Table 1: submodel vectorization",
                                  "paper Table 1 (126/62/49 ns serial/SSE/AVX)");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
