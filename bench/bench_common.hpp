// Shared benchmark harness: workload construction, timing methodology and
// table printing used by every per-figure/per-table bench binary.
//
// Methodology mirrors the paper (§5.1.1): per rule-set, generate a packet
// trace, run warm-up passes, then measure; report ns/packet (latency) and
// packets/second (throughput). On this container only one hardware core is
// available, so the two-core experiments (Figure 8) are *projected* from
// separately measured phases — see DESIGN.md "Substitutions" and the
// model documented in bench_fig8_classbench_multicore.cpp.
//
// Scale control: NM_BENCH_SCALE=quick (default) runs reduced sizes/suites so
// the full battery completes in minutes; NM_BENCH_SCALE=full reproduces the
// paper's 500K x 12-set sweeps (hours).
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "classbench/generator.hpp"
#include "classifiers/classifier.hpp"
#include "common/stats.hpp"
#include "cutsplit/cutsplit.hpp"
#include "neurocuts/neurocuts.hpp"
#include "nuevomatch/nuevomatch.hpp"
#include "trace/trace.hpp"
#include "tuplemerge/tuplemerge.hpp"

namespace nuevomatch::bench {

struct Scale {
  bool full = false;
  size_t large_n = 100'000;   ///< stands in for the paper's 500K in quick mode
  size_t mid_n = 100'000;     ///< the paper's 100K tier
  size_t trace_len = 150'000; ///< paper uses 700K
  int reps = 3;
  int nc_iterations = 4;      ///< NeuroCuts search budget
  std::vector<std::pair<AppClass, int>> suite;  ///< rule-set suite
};

inline Scale bench_scale() {
  Scale s;
  const char* env = std::getenv("NM_BENCH_SCALE");
  s.full = env != nullptr && std::string(env) == "full";
  if (s.full) {
    s.large_n = 500'000;
    s.trace_len = 700'000;
    s.nc_iterations = 8;
    s.suite = paper_suite();
  } else {
    s.suite = {{AppClass::kAcl, 1}, {AppClass::kAcl, 2}, {AppClass::kFw, 1},
               {AppClass::kIpc, 1}};
  }
  return s;
}

// ---------------------------------------------------------------------------
// Timing
// ---------------------------------------------------------------------------

inline uint64_t now_ns() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Keep the optimizer from discarding classification results.
inline volatile int64_t g_sink = 0;

/// ns/packet for a full pass of `cls` over the trace; best of `reps` after
/// one warm-up pass (the paper uses 5 warm-up + 1 measured pass).
inline double measure_ns_per_packet(const Classifier& cls, std::span<const Packet> trace,
                                    int reps = 3) {
  int64_t sink = 0;
  for (const Packet& p : trace) sink += cls.match(p).rule_id;  // warm-up
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const uint64_t t0 = now_ns();
    for (const Packet& p : trace) sink += cls.match(p).rule_id;
    const uint64_t t1 = now_ns();
    best = std::min(best, static_cast<double>(t1 - t0) / static_cast<double>(trace.size()));
  }
  g_sink = sink;
  return best;
}

/// Same, for an arbitrary per-packet callable.
template <typename F>
double measure_ns_per_packet_fn(F&& fn, std::span<const Packet> trace, int reps = 3) {
  int64_t sink = 0;
  for (const Packet& p : trace) sink += fn(p);
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const uint64_t t0 = now_ns();
    for (const Packet& p : trace) sink += fn(p);
    const uint64_t t1 = now_ns();
    best = std::min(best, static_cast<double>(t1 - t0) / static_cast<double>(trace.size()));
  }
  g_sink = sink;
  return best;
}

inline double mpps(double ns_per_packet) { return 1e3 / ns_per_packet; }

// ---------------------------------------------------------------------------
// Engine construction
// ---------------------------------------------------------------------------

inline std::unique_ptr<Classifier> make_baseline(const std::string& name,
                                                 const Scale& s) {
  if (name == "cutsplit") return std::make_unique<CutSplit>();
  if (name == "neurocuts") {
    NeuroCutsConfig cfg;
    cfg.search_iterations = s.nc_iterations;
    return std::make_unique<NeuroCutsLike>(cfg);
  }
  if (name == "tuplemerge") return std::make_unique<TupleMerge>();
  if (name == "tss") return std::make_unique<TupleSpaceSearch>();
  std::fprintf(stderr, "unknown baseline %s\n", name.c_str());
  std::abort();
}

/// NuevoMatch paired with the same engine as remainder (paper §5.2: "For
/// fair comparison, NuevoMatch used the same algorithm for both the
/// remainder classifier and the baseline"). Coverage floors follow §5.1:
/// 25% vs decision trees, 5% vs TupleMerge; 4 iSets vs tm, else 2.
inline std::unique_ptr<NuevoMatch> make_nm(const std::string& baseline, const Scale& s) {
  NuevoMatchConfig cfg;
  cfg.remainder_factory = [baseline, s]() { return make_baseline(baseline, s); };
  if (baseline == "tuplemerge" || baseline == "tss") {
    cfg.min_iset_coverage = 0.05;
    cfg.max_isets = 4;
  } else {
    cfg.min_iset_coverage = 0.25;
    cfg.max_isets = 2;
  }
  return std::make_unique<NuevoMatch>(cfg);
}

inline std::vector<Packet> uniform_trace(const RuleSet& rules, const Scale& s,
                                         uint64_t seed = 99) {
  TraceConfig tc;
  tc.kind = TraceConfig::Kind::kUniform;
  tc.n_packets = s.trace_len;
  tc.seed = seed;
  return generate_trace(rules, tc);
}

// ---------------------------------------------------------------------------
// Output helpers
// ---------------------------------------------------------------------------

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("scale: %s\n", bench_scale().full ? "full (paper)" : "quick (reduced)");
  std::printf("==============================================================\n");
}

// ---------------------------------------------------------------------------
// Machine-readable results (BENCH_<name>.json)
// ---------------------------------------------------------------------------

/// Minimal row-oriented JSON emitter for bench result files. Usage:
///   BenchJson j{"table1"};
///   j.row().set("level", "avx(8)").set("mode", "batched").set("kps", 1e8);
///   j.write("BENCH_table1.json");
class BenchJson {
 public:
  explicit BenchJson(std::string bench) : bench_(std::move(bench)) {}

  BenchJson& row() {
    rows_.emplace_back();
    return *this;
  }
  BenchJson& set(const std::string& key, const std::string& v) {
    rows_.back().emplace_back(key, "\"" + escape(v) + "\"");
    return *this;
  }
  BenchJson& set(const std::string& key, const char* v) {
    return set(key, std::string{v});
  }
  BenchJson& set(const std::string& key, double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    rows_.back().emplace_back(key, buf);
    return *this;
  }
  BenchJson& set(const std::string& key, size_t v) {
    rows_.back().emplace_back(key, std::to_string(v));
    return *this;
  }

  bool write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"rows\": [\n", escape(bench_).c_str());
    for (size_t i = 0; i < rows_.size(); ++i) {
      std::fprintf(f, "    {");
      for (size_t k = 0; k < rows_[i].size(); ++k)
        std::fprintf(f, "%s\"%s\": %s", k != 0 ? ", " : "",
                     escape(rows_[i][k].first).c_str(), rows_[i][k].second.c_str());
      std::fprintf(f, "}%s\n", i + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    return true;
  }

 private:
  static std::string escape(const std::string& s) {
    std::string out;
    for (const char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  std::string bench_;
  std::vector<std::vector<std::pair<std::string, std::string>>> rows_;
};

inline std::string human_bytes(size_t b) {
  char buf[32];
  if (b >= 1024 * 1024) {
    std::snprintf(buf, sizeof buf, "%.1fMB", static_cast<double>(b) / (1024.0 * 1024.0));
  } else if (b >= 1024) {
    std::snprintf(buf, sizeof buf, "%.1fKB", static_cast<double>(b) / 1024.0);
  } else {
    std::snprintf(buf, sizeof buf, "%zuB", b);
  }
  return buf;
}

}  // namespace nuevomatch::bench
