// Table 2: cumulative iSet coverage (% of rules, mean +- std over the suite)
// with 1-4 iSets, per rule-set size, plus the Stanford backbone row.
// Paper @500K: 84.2±10.5 / 98.8±1.5 / 99.4±0.6 / 99.7±0.2; Stanford row
// 57.8 / 91.6 / 96.5 / 98.2.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "classbench/stanford.hpp"
#include "isets/partition.hpp"

using namespace nuevomatch;
using namespace nuevomatch::bench;

int main() {
  const Scale s = bench_scale();
  print_header("Table 2: iSet coverage vs number of iSets",
               "paper Table 2 (coverage improves with rule-set size)");

  std::vector<size_t> sizes{1'000, 10'000, 100'000};
  if (s.full) sizes.push_back(500'000);

  std::printf("%-10s | %16s %16s %16s %16s\n", "rules", "1 iSet", "2 iSets", "3 iSets",
              "4 iSets");
  for (size_t n : sizes) {
    std::array<std::vector<double>, 4> cov;
    for (const auto& [app, variant] : s.suite) {
      const RuleSet rules = generate_classbench(app, variant, n, 1);
      for (int k = 1; k <= 4; ++k) {
        IsetPartitionConfig pc;
        pc.max_isets = k;
        pc.min_coverage_fraction = 0.0;
        cov[static_cast<size_t>(k - 1)].push_back(
            partition_rules(rules, pc).coverage() * 100.0);
      }
    }
    std::printf("%-10zu |", n);
    for (int k = 0; k < 4; ++k)
      std::printf("   %5.1f ± %-5.1f ", mean(cov[static_cast<size_t>(k)]),
                  stddev(cov[static_cast<size_t>(k)]));
    std::printf("\n");
    std::fflush(stdout);
  }

  // Stanford row (paper: 183,376 rules; quick mode samples the structure).
  const size_t stanford_n = s.full ? kStanfordRules : 50'000;
  const RuleSet stanford = generate_stanford_like(1, stanford_n, 2020);
  std::printf("%-10zu |", stanford.size());
  for (int k = 1; k <= 4; ++k) {
    IsetPartitionConfig pc;
    pc.max_isets = k;
    pc.min_coverage_fraction = 0.0;
    std::printf("   %5.1f %-7s ", partition_rules(stanford, pc).coverage() * 100.0, "");
  }
  std::printf(" <- Stanford\n");
  std::printf("\npaper Stanford row: 57.8 / 91.6 / 96.5 / 98.2\n");
  return 0;
}
