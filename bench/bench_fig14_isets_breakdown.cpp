// Figure 14: coverage and execution-time breakdown (remainder / secondary
// search / validation / inference) as the number of iSets grows from 0 to 6.
// Paper: coverage saturates by 2 iSets; extra iSets add compute without
// remainder savings — 1-2 iSets is the sweet spot with a cs remainder.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"

using namespace nuevomatch;
using namespace nuevomatch::bench;

int main() {
  const Scale s = bench_scale();
  print_header("Figure 14: breakdown vs number of iSets (cs remainder)",
               "paper Fig. 14 (coverage saturates ~2 iSets; breakdown per phase)");

  const RuleSet rules = generate_classbench(AppClass::kAcl, 1, s.large_n, 1);
  const auto trace = uniform_trace(rules, s);

  std::printf("%-6s %9s | %10s %10s %10s %10s | %10s\n", "iSets", "coverage",
              "remainder", "inference", "search", "validate", "total ns");
  for (int k = 0; k <= 6; ++k) {
    NuevoMatchConfig cfg;
    cfg.remainder_factory = [&s] { return make_baseline("cutsplit", s); };
    cfg.max_isets = k;
    cfg.min_iset_coverage = 0.01;  // let every iSet in: the sweep IS the experiment
    NuevoMatch nm{cfg};
    nm.build(rules);

    // Phase timings via the staged iSet API.
    const double t_rem = measure_ns_per_packet_fn(
        [&](const Packet& p) {
          return nm.remainder().match(p).rule_id;
        },
        trace, s.reps);
    const double t_inf = measure_ns_per_packet_fn(
        [&](const Packet& p) {
          int64_t acc = 0;
          for (const auto& is : nm.isets())
            acc += static_cast<int64_t>(is.predict(p[is.field()]).index);
          return acc;
        },
        trace, s.reps);
    const double t_inf_search = measure_ns_per_packet_fn(
        [&](const Packet& p) {
          int64_t acc = 0;
          for (const auto& is : nm.isets()) {
            const uint32_t v = p[is.field()];
            acc += is.search(v, is.predict(v));
          }
          return acc;
        },
        trace, s.reps);
    const double t_full_isets = measure_ns_per_packet_fn(
        [&](const Packet& p) { return nm.match_isets(p).rule_id; }, trace, s.reps);
    const double t_search = std::max(0.0, t_inf_search - t_inf);
    const double t_validate = std::max(0.0, t_full_isets - t_inf_search);
    std::printf("%-6d %8.1f%% | %10.1f %10.1f %10.1f %10.1f | %10.1f\n", k,
                nm.coverage() * 100.0, t_rem, t_inf, t_search, t_validate,
                t_rem + t_full_isets);
    std::fflush(stdout);
  }
  std::printf("\npaper: zero iSets = cs alone; diminishing returns beyond 2 iSets\n");
  return 0;
}
