// Figure 17 (appendix) / §5.2 "Small rule-sets": on 1K and 10K rules the
// baselines already fit in L1/L2, so NuevoMatch shows little throughput gain
// (<= 1x is expected) while still improving the projected 2-core latency.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

using namespace nuevomatch;
using namespace nuevomatch::bench;

int main() {
  const Scale s = bench_scale();
  print_header("Figure 17: small rule-sets (1K / 10K), nm vs cs and tm",
               "paper Fig. 17 (tput <=1x; latency ~2x from the 2-core split)");

  std::printf("%-8s %7s | %10s %10s | %10s %10s\n", "ruleset", "n", "tput nm/cs",
              "tput nm/tm", "lat nm/cs", "lat nm/tm");
  std::vector<double> t_cs, t_tm, l_cs, l_tm;
  for (size_t n : {size_t{1'000}, size_t{10'000}}) {
    for (const auto& [app, variant] : s.suite) {
      const RuleSet rules = generate_classbench(app, variant, n, 1);
      const auto trace = uniform_trace(rules, s, 3);

      auto report = [&](const char* bname, std::vector<double>& tv,
                        std::vector<double>& lv) {
        auto base = make_baseline(bname, s);
        base->build(rules);
        const double tb = measure_ns_per_packet(*base, trace, s.reps);
        auto nm = make_nm(bname, s);
        nm->build(rules);
        if (nm->isets().empty()) return std::pair{-1.0, -1.0};  // fallback case
        const double tn = measure_ns_per_packet(*nm, trace, s.reps);
        const double ti = measure_ns_per_packet_fn(
            [&](const Packet& p) { return nm->match_isets(p).rule_id; }, trace, s.reps);
        const double tr = measure_ns_per_packet_fn(
            [&](const Packet& p) { return nm->remainder().match(p).rule_id; }, trace,
            s.reps);
        const double tput = tb / tn;
        const double lat = tb / std::max(ti, tr);  // 2-core projection
        tv.push_back(tput);
        lv.push_back(lat);
        return std::pair{tput, lat};
      };
      const auto cs = report("cutsplit", t_cs, l_cs);
      const auto tm = report("tuplemerge", t_tm, l_tm);
      std::printf("%-8s %7zu |", ruleset_name(app, variant).c_str(), n);
      if (cs.first > 0) {
        std::printf(" %9.2fx", cs.first);
      } else {
        std::printf("  no-iSets");
      }
      if (tm.first > 0) {
        std::printf(" %9.2fx |", tm.first);
      } else {
        std::printf("  no-iSets |");
      }
      if (cs.second > 0) {
        std::printf(" %9.2fx", cs.second);
      } else {
        std::printf("  fallback");
      }
      if (tm.second > 0) {
        std::printf(" %9.2fx\n", tm.second);
      } else {
        std::printf("  fallback\n");
      }
      std::fflush(stdout);
    }
  }
  if (!t_cs.empty()) {
    std::printf("GM: tput nm/cs %.2fx nm/tm %.2fx | lat nm/cs %.2fx nm/tm %.2fx\n",
                geometric_mean(t_cs), geometric_mean(t_tm), geometric_mean(l_cs),
                geometric_mean(l_tm));
  }
  std::printf("\npaper: same-or-lower throughput, ~1.9-2.2x avg latency gain;\n"
              "rule-sets without qualifying iSets fall back to the baseline\n");
  return 0;
}
