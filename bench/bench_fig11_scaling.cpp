// Figure 11: throughput vs number of rules for TupleMerge with and without
// NuevoMatch acceleration, annotated with coverage and index memory
// (remainder : total). Paper: tm throughput collapses as its tables spill
// out of L1/L2; nm keeps the remainder cache-resident and stays flat.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

using namespace nuevomatch;
using namespace nuevomatch::bench;

int main() {
  const Scale s = bench_scale();
  print_header("Figure 11: throughput vs rule count, tm vs nm(tm)",
               "paper Fig. 11 (ACL1; tm degrades, nm stays near-flat)");

  std::vector<size_t> sizes{1'000, 10'000, 100'000};
  if (s.full) sizes.push_back(500'000);

  std::printf("%-9s | %9s %12s | %9s %12s %12s %9s\n", "rules", "tm Mpps", "tm index",
              "nm Mpps", "nm remainder", "nm total", "coverage");
  for (size_t n : sizes) {
    const RuleSet rules = generate_classbench(AppClass::kAcl, 1, n, 1);
    const auto trace = uniform_trace(rules, s);

    TupleMerge tm;
    tm.build(rules);
    const double t_tm = measure_ns_per_packet(tm, trace, s.reps);

    auto nm = make_nm("tuplemerge", s);
    nm->build(rules);
    const double t_nm = measure_ns_per_packet(*nm, trace, s.reps);

    const size_t rem_bytes = nm->remainder().memory_bytes();
    std::printf("%-9zu | %9.2f %12s | %9.2f %12s %12s %8.1f%%\n", n, mpps(t_tm),
                human_bytes(tm.memory_bytes()).c_str(), mpps(t_nm),
                human_bytes(rem_bytes).c_str(), human_bytes(nm->memory_bytes()).c_str(),
                nm->coverage() * 100.0);
    std::fflush(stdout);
  }
  std::printf("\npaper annotations @500K: tm 10MB -> remainder 7.9KB at 99%% coverage\n");
  return 0;
}
