// Figure 13: index memory footprint of CutSplit / NeuroCuts / TupleMerge vs
// NuevoMatch (remainder index + RQ-RMI models), per rule-set size; each cell
// averages the suite (geometric mean, matching the paper's bars).
// Paper @500K: nm compresses cs/nc/tm by 4.9x / 8x / 82x on average.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

using namespace nuevomatch;
using namespace nuevomatch::bench;

int main() {
  const Scale s = bench_scale();
  print_header("Figure 13: index memory footprint",
               "paper Fig. 13 (@500K compression GM: 4.9x cs, 8x nc, 82x tm)");

  std::vector<size_t> sizes{1'000, 10'000, 100'000};
  if (s.full) sizes.push_back(500'000);
  const std::vector<std::string> baselines{"cutsplit", "neurocuts", "tuplemerge"};

  std::printf("%-8s %-10s | %12s | %12s %12s %12s | %8s\n", "rules", "baseline",
              "base index", "nm remainder", "nm iSets", "nm total", "factor");
  for (size_t n : sizes) {
    for (const auto& bname : baselines) {
      std::vector<double> base_bytes, nm_bytes, rem_bytes, iset_bytes;
      for (const auto& [app, variant] : s.suite) {
        const RuleSet rules = generate_classbench(app, variant, n, 1);
        auto base = make_baseline(bname, s);
        base->build(rules);
        auto nm = make_nm(bname, s);
        nm->build(rules);
        size_t models = 0;
        for (const auto& is : nm->isets()) models += is.model_bytes();
        base_bytes.push_back(static_cast<double>(base->memory_bytes()));
        rem_bytes.push_back(static_cast<double>(nm->remainder().memory_bytes()));
        iset_bytes.push_back(static_cast<double>(models));
        nm_bytes.push_back(static_cast<double>(nm->memory_bytes()));
      }
      const double gb = geometric_mean(base_bytes);
      const double gn = geometric_mean(nm_bytes);
      std::printf("%-8zu %-10s | %12s | %12s %12s %12s | %7.1fx\n", n, bname.c_str(),
                  human_bytes(static_cast<size_t>(gb)).c_str(),
                  human_bytes(static_cast<size_t>(geometric_mean(rem_bytes))).c_str(),
                  human_bytes(static_cast<size_t>(geometric_mean(iset_bytes))).c_str(),
                  human_bytes(static_cast<size_t>(gn)).c_str(), gb / gn);
      std::fflush(stdout);
    }
  }
  std::printf("\ncache reference: L1 32KB, L2 1MB (paper's Xeon Silver 4116)\n");
  return 0;
}
