// Table 3: partitioning effectiveness under low-diversity blending — replace
// a fraction of a large ClassBench set with Cartesian-product (low
// diversity) rules and report single-iSet coverage plus throughput speedup
// over TupleMerge. Paper: 70%/50%/30% low-diversity -> coverage 25/50/70%,
// speedup 1.07x/1.14x/1.60x; nm becomes effective once it offloads ~25%.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "isets/partition.hpp"

using namespace nuevomatch;
using namespace nuevomatch::bench;

int main() {
  const Scale s = bench_scale();
  print_header("Table 3: low-diversity blend vs coverage and speedup",
               "paper Table 3 (coverage ~inverse of low-diversity fraction)");

  const RuleSet base = generate_classbench(AppClass::kAcl, 1, s.large_n, 1);
  std::printf("%-18s | %12s | %12s\n", "% low-diversity", "1-iSet cov", "tput speedup");
  for (double frac : {0.7, 0.5, 0.3}) {
    const RuleSet rules = blend_low_diversity(base, frac, 11);
    IsetPartitionConfig pc;
    pc.max_isets = 1;
    pc.min_coverage_fraction = 0.0;
    const double cov = partition_rules(rules, pc).coverage();

    const auto trace = uniform_trace(rules, s, 13);
    TupleMerge tm;
    tm.build(rules);
    const double t_tm = measure_ns_per_packet(tm, trace, s.reps);
    auto nm = make_nm("tuplemerge", s);
    nm->build(rules);
    const double t_nm = measure_ns_per_packet(*nm, trace, s.reps);

    std::printf("%-17.0f%% | %11.1f%% | %11.2fx\n", frac * 100.0, cov * 100.0,
                t_tm / t_nm);
    std::fflush(stdout);
  }
  std::printf("\npaper: 70%%->25%%/1.07x, 50%%->50%%/1.14x, 30%%->70%%/1.60x\n");
  return 0;
}
