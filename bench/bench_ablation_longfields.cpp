// Section 4, "Handling long fields": compare the SPLIT (32-bit sub-fields)
// and FLOAT (one lossy scalar) encodings on 48-bit MAC and 128-bit IPv6
// rule-sets. Paper: "The two showed similar results for iSet partitioning
// with MAC addresses, while with IPv6, splitting into multiple fields worked
// better."
#include <cstdio>

#include "bench_common.hpp"
#include "wide/wide.hpp"
#include "wide/wide_index.hpp"

using namespace nuevomatch;
using namespace nuevomatch::wide;
using namespace nuevomatch::bench;

int main() {
  const Scale s = bench_scale();
  const size_t n = s.full ? 100'000 : 20'000;
  print_header("Ablation: long-field encodings (Sec 4)",
               "paper Sec 4 (MAC: split ~ float; IPv6: split wins)");

  std::printf("%-8s %-9s | %9s %9s %10s | %12s %10s\n", "workload", "encoding",
              "coverage", "isets", "remainder", "lookup ns", "model KB");
  for (bool mac : {true, false}) {
    const WideRuleSet rules =
        mac ? generate_mac_rules(n, 2024) : generate_ipv6_rules(n, 2024);
    const auto trace = generate_wide_trace(rules, s.trace_len / 4, 33);
    for (auto enc : {Encoding::kSplit, Encoding::kFloat}) {
      WideClassifier::Config cfg;
      cfg.encoding = enc;
      WideClassifier cls;
      cls.build(rules, cfg);

      int64_t sink = 0;
      for (const auto& p : trace) sink += cls.match(p).rule_id;  // warm-up
      double best = 1e300;
      for (int rep = 0; rep < s.reps; ++rep) {
        const uint64_t t0 = now_ns();
        for (const auto& p : trace) sink += cls.match(p).rule_id;
        best = std::min(best, static_cast<double>(now_ns() - t0) /
                                  static_cast<double>(trace.size()));
      }
      g_sink = sink;

      std::printf("%-8s %-9s | %8.1f%% %9zu %10zu | %12.1f %10.1f\n",
                  mac ? "mac48" : "ipv6", to_string(enc).c_str(),
                  cls.coverage() * 100.0, cls.isets().size(), cls.remainder_size(),
                  best, static_cast<double>(cls.model_bytes()) / 1024.0);
      std::fflush(stdout);
    }
  }
  std::printf("\npaper: MAC behaves alike under both encodings; IPv6 needs the\n"
              "split encoding because /64-and-deeper bits fall below the\n"
              "53-bit double mantissa once the registry prefix consumed it\n");
  return 0;
}
