// §3.9 / Figure 7: rule updates. Updated rules migrate to the remainder,
// degrading throughput until a retrain; the sustained update rate is set by
// how fast training restores a small remainder. We reproduce:
//   (a) throughput vs fraction of rules migrated (the degradation curve);
//   (b) the Figure 7 sawtooth: updates at a fixed rate with periodic
//       retraining, reporting throughput per epoch and the retrain cost;
//   (c) the online subsystem (nuevomatch/online.hpp): sustained insert/
//       remove throughput from an updater thread while lookups keep
//       returning oracle-exact results before, during, and after the
//       background retrain-swap. Lookup answers are verified differentially
//       against LinearSearch on a stable core (churn rules carry strictly
//       worse priorities, so core answers are invariant under churn).
//       Includes a TupleMerge-alone update-rate row: the raw rate of the
//       update-native engine NuevoMatch wraps, as competitor context for
//       the headline updates/sec number (ROADMAP "churn benchmarks vs
//       update-native baselines");
//   (d) the sharded multi-writer update path: W writer threads over W
//       journal shards while reader threads drive the ONLINE parallel
//       engine (per-batch generation pinning) and verify every lookup.
//       Updates/sec should scale with writer shards on a multi-core host;
//       this container has one hardware core, so the numbers here record
//       contention behavior (no serialization collapse), not core scaling.
// Paper: ~4k updates/sec sustainable on 500K rules at ~half the update-free
// speedup, assuming minute-long (TF) training.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "nuevomatch/online.hpp"
#include "nuevomatch/parallel.hpp"
#include "trace/verification.hpp"

using namespace nuevomatch;
using namespace nuevomatch::bench;

int main() {
  const Scale s = bench_scale();
  print_header("Sec 3.9 / Figure 7: updates, degradation and retraining",
               "paper Fig. 7 (sawtooth) + sustained-rate estimate");

  const RuleSet rules = generate_classbench(AppClass::kAcl, 1, s.large_n, 1);
  const auto trace = uniform_trace(rules, s, 21);

  TupleMerge tm_alone;
  tm_alone.build(rules);
  const double t_tm = measure_ns_per_packet(tm_alone, trace, s.reps);

  // (a) degradation: migrate a growing fraction of rules via delete+insert.
  std::printf("-- throughput vs migrated fraction (remainder growth) --\n");
  std::printf("%-10s | %10s %12s %12s\n", "migrated", "nm Mpps", "speedup/tm",
              "remainder");
  for (double frac : {0.0, 0.01, 0.05, 0.10, 0.20}) {
    auto nm = make_nm("tuplemerge", s);
    nm->build(rules);
    Rng rng{31};
    const auto n_upd = static_cast<size_t>(frac * static_cast<double>(rules.size()));
    for (size_t i = 0; i < n_upd; ++i) {
      const uint32_t victim = static_cast<uint32_t>(rng.below(rules.size()));
      Rule moved = rules[victim];
      if (!nm->erase(victim)) continue;  // already migrated earlier
      moved.field[kDstPort] = full_range(kDstPort);  // matching-set change
      nm->insert(moved);
    }
    const double t_nm = measure_ns_per_packet(*nm, trace, s.reps);
    std::printf("%-9.0f%% | %10.2f %11.2fx %12zu\n", frac * 100.0, mpps(t_nm),
                t_tm / t_nm, nm->remainder_size());
    std::fflush(stdout);
  }

  // (b) sawtooth: fixed update rate, retrain every epoch (Figure 7's tau).
  std::printf("\n-- Figure 7 sawtooth: updates + periodic retraining --\n");
  std::printf("%-6s | %12s %12s %12s\n", "epoch", "pre Mpps", "post Mpps", "retrain ms");
  auto nm = make_nm("tuplemerge", s);
  nm->build(rules);
  Rng rng{37};
  const size_t updates_per_epoch = rules.size() / 20;
  for (int epoch = 1; epoch <= 4; ++epoch) {
    for (size_t i = 0; i < updates_per_epoch; ++i) {
      const uint32_t victim = static_cast<uint32_t>(rng.below(rules.size()));
      Rule moved = rules[victim];
      if (!nm->erase(victim)) continue;
      nm->insert(moved);
    }
    const double pre = mpps(measure_ns_per_packet(*nm, trace, 1));
    const uint64_t t0 = now_ns();
    nm->rebuild();
    const double retrain_ms = static_cast<double>(now_ns() - t0) / 1e6;
    const double post = mpps(measure_ns_per_packet(*nm, trace, 1));
    std::printf("%-6d | %12.2f %12.2f %12.1f\n", epoch, pre, post, retrain_ms);
    std::fflush(stdout);
  }
  std::printf("\nsustained-rate estimate: updates/sec such that the remainder stays\n"
              "below ~10%% between retrains = 0.10 * n / retrain_seconds (paper: ~4k/s\n"
              "at 500K with minute-long TF training; our trainer shifts it far higher)\n");

  // (c) online subsystem: updater thread + verified lookups across a
  // background retrain-swap. Every lookup is checked against the linear
  // oracle's answer; a single divergence fails the bench.
  std::printf("\n-- online subsystem: concurrent updates + verified lookups --\n");
  const RuleSet base = generate_classbench(AppClass::kAcl, 2,
                                           std::min<size_t>(s.large_n, 50'000), 41);
  OnlineConfig ocfg;
  ocfg.base.remainder_factory = [] { return std::make_unique<TupleMerge>(); };
  ocfg.base.min_iset_coverage = 0.05;
  ocfg.retrain_threshold = 0.02;
  OnlineNuevoMatch online{ocfg};
  online.build(base);

  // Stable verification core (trace/verification.hpp): packets that hit a
  // base rule, with expected ids from the linear oracle. Churn rules use
  // strictly worse priorities, so these answers are invariant while the
  // updater runs.
  const StableCore core = make_stable_core(base, s.trace_len, 42);
  std::printf("base %zu rules, verification core %zu packets, threshold %.0f%%\n",
              base.size(), core.packets.size(), ocfg.retrain_threshold * 100);

  std::atomic<uint64_t> mismatches{0};
  const auto verified_pass = [&]() -> double {  // ns/packet over the core
    const uint64_t t0 = now_ns();
    for (size_t i = 0; i < core.packets.size(); ++i) {
      if (online.match(core.packets[i]).rule_id != core.expected[i])
        mismatches.fetch_add(1);
    }
    return static_cast<double>(now_ns() - t0) /
           static_cast<double>(core.packets.size());
  };

  const double before_ns = verified_pass();
  const uint64_t gen_before = online.generations();

  // Updater thread: insert a worse-priority clone of a random base rule,
  // and erase the oldest churn rule once a backlog builds — base rules are
  // never touched, so the verification core stays exact.
  std::atomic<bool> churn{true};
  std::atomic<uint64_t> ops{0};
  std::thread updater([&] {
    Rng rng{43};
    std::deque<uint32_t> backlog;
    uint32_t next_id = 1'000'000;
    while (churn.load(std::memory_order_relaxed)) {
      Rule r = base[rng.below(base.size())];
      r.id = next_id++;
      r.priority = 2'000'000 + static_cast<int32_t>(r.id);
      if (online.insert(r)) {
        backlog.push_back(r.id);
        ops.fetch_add(1, std::memory_order_relaxed);
      }
      if (backlog.size() > 256) {
        if (online.erase(backlog.front())) ops.fetch_add(1, std::memory_order_relaxed);
        backlog.pop_front();
      }
    }
  });

  // Lookups during churn, until at least one background swap has been
  // observed (bounded by a deadline so the bench cannot hang).
  const uint64_t t_churn0 = now_ns();
  const uint64_t deadline = t_churn0 + uint64_t{60} * 1'000'000'000;
  double during_ns = 0.0;
  int during_passes = 0;
  while ((online.generations() == gen_before || during_passes < 3) &&
         now_ns() < deadline) {
    during_ns += verified_pass();
    ++during_passes;
  }
  churn.store(false);
  updater.join();
  const double churn_secs =
      static_cast<double>(now_ns() - t_churn0) / 1e9;
  const uint64_t total_ops = ops.load();
  online.quiesce();
  const uint64_t swaps = online.generations() - gen_before;
  const double after_ns = verified_pass();

  during_ns = during_passes > 0 ? during_ns / during_passes : 0.0;
  std::printf("%-22s | %12s %12s %12s\n", "phase", "Mpps", "updates/s", "swaps");
  std::printf("%-22s | %12.2f %12s %12s\n", "before churn", mpps(before_ns), "-", "-");
  std::printf("%-22s | %12.2f %12.0f %12llu\n", "during churn+retrain",
              mpps(during_ns), static_cast<double>(total_ops) / churn_secs,
              static_cast<unsigned long long>(swaps));
  std::printf("%-22s | %12.2f %12s %12s\n", "after quiesce", mpps(after_ns), "-", "-");
  std::printf("verified lookups: %llu mismatches (must be 0); absorption now %.2f%%\n",
              static_cast<unsigned long long>(mismatches.load()),
              online.absorption() * 100);

  BenchJson j{"updates_online"};
  j.row()
      .set("section", "online_single")
      .set("rules", base.size())
      .set("updates_per_sec", static_cast<double>(total_ops) / churn_secs)
      .set("mpps_before", mpps(before_ns))
      .set("mpps_during", mpps(during_ns))
      .set("mpps_after", mpps(after_ns))
      .set("swaps", static_cast<size_t>(swaps))
      .set("mismatches", static_cast<size_t>(mismatches.load()));

  // TupleMerge-alone update rate: the raw insert/erase throughput of the
  // update-native engine NuevoMatch wraps, on the same rule-set — the
  // competitor context for the row above (an online classifier can at best
  // approach this; the gap is the price of the learned index's retraining).
  std::printf("\n-- competitor context: TupleMerge-alone update rate --\n");
  {
    TupleMerge tm_upd;
    tm_upd.build(base);
    Rng urng{55};
    std::deque<uint32_t> backlog;
    uint32_t next_id = 5'000'000;
    uint64_t done = 0;
    const size_t kOps = 100'000;
    const uint64_t u0 = now_ns();
    for (size_t i = 0; i < kOps; ++i) {
      Rule r = base[urng.below(base.size())];
      r.id = next_id++;
      r.priority = 2'000'000 + static_cast<int32_t>(i);
      if (tm_upd.insert(r)) {
        backlog.push_back(r.id);
        ++done;
      }
      if (backlog.size() > 256) {
        if (tm_upd.erase(backlog.front())) ++done;
        backlog.pop_front();
      }
    }
    const double secs = static_cast<double>(now_ns() - u0) / 1e9;
    std::printf("tuplemerge alone: %.0f updates/s (%zu rules)\n",
                static_cast<double>(done) / secs, base.size());
    j.row()
        .set("section", "competitor")
        .set("engine", "tuplemerge")
        .set("rules", base.size())
        .set("updates_per_sec", static_cast<double>(done) / secs);
  }

  // (d) sharded multi-writer update path + online parallel engine readers:
  // W writer threads over W journal shards churn while 2 reader threads
  // drive BatchParallelEngine in online mode (per-batch generation pinning)
  // and verify every lookup against the stable core. On a multi-core host
  // updates/s should scale with writers; this container has one hardware
  // core, so these rows demonstrate no-serialization-collapse rather than
  // core scaling (see DESIGN.md "Substitutions").
  std::printf("\n-- (d) sharded multi-writer updates + online parallel engine --\n");
  std::printf("%-8s %-7s | %12s %10s %12s %7s %6s\n", "writers", "shards",
              "updates/s", "vs 1w", "lookups", "swaps", "mism");
  const RuleSet mw_base = generate_classbench(
      AppClass::kAcl, 1, std::min<size_t>(s.large_n, 30'000), 61);
  const StableCore mw_core = make_stable_core(mw_base, s.trace_len / 2, 62);
  uint64_t mw_bad_total = 0;
  double upd_1w = 0.0;
  for (const int writers : {1, 2, 4}) {
    OnlineConfig mcfg;
    mcfg.base.remainder_factory = [] { return std::make_unique<TupleMerge>(); };
    mcfg.base.min_iset_coverage = 0.05;
    mcfg.retrain_threshold = 0.05;
    mcfg.update_shards = writers;
    OnlineNuevoMatch mw{mcfg};
    mw.build(mw_base);
    const uint64_t g0 = mw.generations();

    std::atomic<bool> halt_writers{false};
    std::atomic<bool> halt_readers{false};
    std::atomic<uint64_t> mw_ops{0};
    std::atomic<uint64_t> mw_lookups{0};
    std::atomic<uint64_t> mw_bad{0};
    std::vector<std::thread> rd;
    for (int t = 0; t < 2; ++t) {
      rd.emplace_back([&, t] {
        BatchParallelEngine engine{mw};
        std::vector<MatchResult> out(kDefaultBatchSize);
        size_t off = static_cast<size_t>(t) * 64 % mw_core.packets.size();
        while (!halt_readers.load(std::memory_order_relaxed)) {
          const size_t len =
              std::min(kDefaultBatchSize, mw_core.packets.size() - off);
          engine.classify({mw_core.packets.data() + off, len}, {out.data(), len});
          for (size_t i = 0; i < len; ++i) {
            if (out[i].rule_id != mw_core.expected[off + i]) mw_bad.fetch_add(1);
          }
          mw_lookups.fetch_add(len, std::memory_order_relaxed);
          off = (off + len) % mw_core.packets.size();
          // Sub-saturation duty cycle: back-to-back pins from two readers
          // leave no unlocked window, and glibc's reader-preferring rwlock
          // then starves writers outright (updates/s collapses to ~0 — a
          // real effect worth knowing about, see ROADMAP "Generation-lock-
          // free readers"). A short gap between batches models a loaded but
          // not lock-saturated data path.
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
      });
    }
    std::vector<std::thread> wr;
    const uint64_t w0 = now_ns();
    for (int w = 0; w < writers; ++w) {
      wr.emplace_back([&, w] {
        Rng rng{static_cast<uint64_t>(100 + w)};
        std::deque<uint32_t> backlog;
        uint32_t next_id = 10'000'000 + static_cast<uint32_t>(w) * 100'000'000;
        while (!halt_writers.load(std::memory_order_relaxed)) {
          Rule r = mw_base[rng.below(mw_base.size())];
          r.id = next_id++;
          r.priority = 2'000'000 + static_cast<int32_t>(r.id & 0xFFFFF);
          if (mw.insert(r)) {
            backlog.push_back(r.id);
            mw_ops.fetch_add(1, std::memory_order_relaxed);
          }
          if (backlog.size() > 256) {
            if (mw.erase(backlog.front()))
              mw_ops.fetch_add(1, std::memory_order_relaxed);
            backlog.pop_front();
          }
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1500));
    halt_writers.store(true);
    for (auto& th : wr) th.join();
    const double w_secs = static_cast<double>(now_ns() - w0) / 1e9;
    halt_readers.store(true);
    for (auto& th : rd) th.join();
    mw.quiesce();

    const double upd_rate = static_cast<double>(mw_ops.load()) / w_secs;
    if (writers == 1) upd_1w = upd_rate;
    const uint64_t mw_swaps = mw.generations() - g0;
    mw_bad_total += mw_bad.load();
    std::printf("%-8d %-7d | %12.0f %9.2fx %12llu %7llu %6llu\n", writers,
                mw.update_shards(), upd_rate,
                upd_1w > 0.0 ? upd_rate / upd_1w : 1.0,
                static_cast<unsigned long long>(mw_lookups.load()),
                static_cast<unsigned long long>(mw_swaps),
                static_cast<unsigned long long>(mw_bad.load()));
    std::fflush(stdout);
    j.row()
        .set("section", "multi_writer")
        .set("writers", static_cast<size_t>(writers))
        .set("shards", static_cast<size_t>(mw.update_shards()))
        .set("rules", mw_base.size())
        .set("updates_per_sec", upd_rate)
        .set("scaling_vs_1w", upd_1w > 0.0 ? upd_rate / upd_1w : 1.0)
        .set("verified_lookups", static_cast<size_t>(mw_lookups.load()))
        .set("swaps", static_cast<size_t>(mw_swaps))
        .set("mismatches", static_cast<size_t>(mw_bad.load()));
  }
  std::printf("note: one hardware core on this container — writer threads "
              "timeshare, so\ncore scaling is only observable on multi-core "
              "hosts; shards remove the lock\nserialization either way\n");

  j.write("BENCH_updates.json");

  if (mismatches.load() != 0 || mw_bad_total != 0) {
    std::fprintf(stderr, "FAIL: lookups diverged from the linear oracle\n");
    return 1;
  }
  if (swaps == 0)
    std::printf("note: no background swap observed before the deadline "
                "(increase churn time or lower the threshold)\n");
  return 0;
}
