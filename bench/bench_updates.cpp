// §3.9 / Figure 7: rule updates. Updated rules migrate to the remainder,
// degrading throughput until a retrain; the sustained update rate is set by
// how fast training restores a small remainder. We reproduce:
//   (a) throughput vs fraction of rules migrated (the degradation curve);
//   (b) the Figure 7 sawtooth: updates at a fixed rate with periodic
//       retraining, reporting throughput per epoch and the retrain cost.
// Paper: ~4k updates/sec sustainable on 500K rules at ~half the update-free
// speedup, assuming minute-long (TF) training.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "common/rng.hpp"

using namespace nuevomatch;
using namespace nuevomatch::bench;

int main() {
  const Scale s = bench_scale();
  print_header("Sec 3.9 / Figure 7: updates, degradation and retraining",
               "paper Fig. 7 (sawtooth) + sustained-rate estimate");

  const RuleSet rules = generate_classbench(AppClass::kAcl, 1, s.large_n, 1);
  const auto trace = uniform_trace(rules, s, 21);

  TupleMerge tm_alone;
  tm_alone.build(rules);
  const double t_tm = measure_ns_per_packet(tm_alone, trace, s.reps);

  // (a) degradation: migrate a growing fraction of rules via delete+insert.
  std::printf("-- throughput vs migrated fraction (remainder growth) --\n");
  std::printf("%-10s | %10s %12s %12s\n", "migrated", "nm Mpps", "speedup/tm",
              "remainder");
  for (double frac : {0.0, 0.01, 0.05, 0.10, 0.20}) {
    auto nm = make_nm("tuplemerge", s);
    nm->build(rules);
    Rng rng{31};
    const auto n_upd = static_cast<size_t>(frac * static_cast<double>(rules.size()));
    for (size_t i = 0; i < n_upd; ++i) {
      const uint32_t victim = static_cast<uint32_t>(rng.below(rules.size()));
      Rule moved = rules[victim];
      if (!nm->erase(victim)) continue;  // already migrated earlier
      moved.field[kDstPort] = full_range(kDstPort);  // matching-set change
      nm->insert(moved);
    }
    const double t_nm = measure_ns_per_packet(*nm, trace, s.reps);
    std::printf("%-9.0f%% | %10.2f %11.2fx %12zu\n", frac * 100.0, mpps(t_nm),
                t_tm / t_nm, nm->remainder_size());
    std::fflush(stdout);
  }

  // (b) sawtooth: fixed update rate, retrain every epoch (Figure 7's tau).
  std::printf("\n-- Figure 7 sawtooth: updates + periodic retraining --\n");
  std::printf("%-6s | %12s %12s %12s\n", "epoch", "pre Mpps", "post Mpps", "retrain ms");
  auto nm = make_nm("tuplemerge", s);
  nm->build(rules);
  Rng rng{37};
  const size_t updates_per_epoch = rules.size() / 20;
  for (int epoch = 1; epoch <= 4; ++epoch) {
    for (size_t i = 0; i < updates_per_epoch; ++i) {
      const uint32_t victim = static_cast<uint32_t>(rng.below(rules.size()));
      Rule moved = rules[victim];
      if (!nm->erase(victim)) continue;
      nm->insert(moved);
    }
    const double pre = mpps(measure_ns_per_packet(*nm, trace, 1));
    const uint64_t t0 = now_ns();
    nm->rebuild();
    const double retrain_ms = static_cast<double>(now_ns() - t0) / 1e6;
    const double post = mpps(measure_ns_per_packet(*nm, trace, 1));
    std::printf("%-6d | %12.2f %12.2f %12.1f\n", epoch, pre, post, retrain_ms);
    std::fflush(stdout);
  }
  std::printf("\nsustained-rate estimate: updates/sec such that the remainder stays\n"
              "below ~10%% between retrains = 0.10 * n / retrain_seconds (paper: ~4k/s\n"
              "at 500K with minute-long TF training; our trainer shifts it far higher)\n");
  return 0;
}
