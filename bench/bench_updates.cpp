// §3.9 / Figure 7: rule updates. Updated rules migrate to the update layer,
// degrading throughput until a retrain; the sustained update rate is set by
// how fast training restores a small remainder. We reproduce:
//   (a) throughput vs fraction of rules migrated (the degradation curve);
//   (b) the Figure 7 sawtooth: updates at a fixed rate with periodic
//       retraining, reporting throughput per epoch and the retrain cost;
//   (c) the online subsystem (nuevomatch/online.hpp) on the epoch-based
//       wait-free read path: a controller thread pushes batched update
//       bursts (insert_batch/erase_batch — one writer-lock hold and one
//       copy-on-write commit per burst) at a fixed offered rate while the
//       main thread runs verified lookups — every answer checked against
//       the linear oracle through the background retrain/swaps. A second
//       phase measures the saturated update ceiling (single-op vs batched
//       commits) with a verified reader still racing. Model reuse
//       (remainder-only churn retrains no iSet) is reported per swap;
//   (d) the multi-writer path under SATURATED readers — the exact scenario
//       that starved writers to ~0 updates/s on the PR 3 reader-preferring
//       rwlock (old section (d) worked around it with a reader duty cycle;
//       the epoch path needs no workaround). W batch-committing writer
//       threads race two flat-out online parallel-engine readers; on this
//       one-core container updates/s scales with the writers' CPU share,
//       which is precisely what reader-starvation used to deny them;
//   (e) writer progress vs reader saturation: one saturated writer against
//       0/2/4 spinning readers — the no-starvation regression row;
//   (f) replicated-pipeline readers during churn: the reader side is the
//       real 2-replica dataplane graph on the Click-style scheduler, every
//       merged record verified against the stable core while a saturated
//       writer and fire-and-forget retrains race it;
//   plus competitor context for the headline updates/sec: TupleMerge alone,
//   classic Tuple Space Search (hash-per-tuple — the RVH-style hash-table
//   baseline family, see PAPERS.md "RVH: Range-Vector Hash"), and a
//   priority-sorted list (array insert/erase), all update-native.
// Paper: ~4k updates/sec sustainable on 500K rules at ~half the update-free
// speedup, assuming minute-long (TF) training.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "classifiers/linear.hpp"
#include "common/rng.hpp"
#include "nuevomatch/online.hpp"
#include "nuevomatch/parallel.hpp"
#include "pipeline/elements.hpp"
#include "pipeline/replicate.hpp"
#include "trace/verification.hpp"

using namespace nuevomatch;
using namespace nuevomatch::bench;

namespace {

/// Update-rate loop shared by the competitor rows: worse-priority clone
/// inserts with a bounded backlog of erases, `n_ops` scheduled inserts.
double competitor_updates_per_sec(Classifier& cls, const RuleSet& base,
                                  size_t n_ops, uint64_t seed) {
  Rng rng{seed};
  std::deque<uint32_t> backlog;
  uint32_t next_id = 5'000'000;
  uint64_t done = 0;
  const uint64_t t0 = now_ns();
  for (size_t i = 0; i < n_ops; ++i) {
    Rule r = base[rng.below(base.size())];
    r.id = next_id++;
    r.priority = 2'000'000 + static_cast<int32_t>(i);
    if (cls.insert(r)) {
      backlog.push_back(r.id);
      ++done;
    }
    if (backlog.size() > 256) {
      if (cls.erase(backlog.front())) ++done;
      backlog.pop_front();
    }
  }
  const double secs = static_cast<double>(now_ns() - t0) / 1e9;
  return static_cast<double>(done) / secs;
}

}  // namespace

int main() {
  const Scale s = bench_scale();
  print_header("Sec 3.9 / Figure 7: updates, degradation and retraining",
               "paper Fig. 7 (sawtooth) + sustained-rate estimate");

  const RuleSet rules = generate_classbench(AppClass::kAcl, 1, s.large_n, 1);
  const auto trace = uniform_trace(rules, s, 21);

  TupleMerge tm_alone;
  tm_alone.build(rules);
  const double t_tm = measure_ns_per_packet(tm_alone, trace, s.reps);

  // (a) degradation: migrate a growing fraction of rules via delete+insert.
  std::printf("-- throughput vs migrated fraction (remainder growth) --\n");
  std::printf("%-10s | %10s %12s %12s\n", "migrated", "nm Mpps", "speedup/tm",
              "remainder");
  for (double frac : {0.0, 0.01, 0.05, 0.10, 0.20}) {
    auto nm = make_nm("tuplemerge", s);
    nm->build(rules);
    Rng rng{31};
    const auto n_upd = static_cast<size_t>(frac * static_cast<double>(rules.size()));
    for (size_t i = 0; i < n_upd; ++i) {
      const uint32_t victim = static_cast<uint32_t>(rng.below(rules.size()));
      Rule moved = rules[victim];
      if (!nm->erase(victim)) continue;  // already migrated earlier
      moved.field[kDstPort] = full_range(kDstPort);  // matching-set change
      nm->insert(moved);
    }
    const double t_nm = measure_ns_per_packet(*nm, trace, s.reps);
    std::printf("%-9.0f%% | %10.2f %11.2fx %12zu\n", frac * 100.0, mpps(t_nm),
                t_tm / t_nm, nm->remainder_size());
    std::fflush(stdout);
  }

  // (b) sawtooth: fixed update rate, retrain every epoch (Figure 7's tau).
  std::printf("\n-- Figure 7 sawtooth: updates + periodic retraining --\n");
  std::printf("%-6s | %12s %12s %12s\n", "epoch", "pre Mpps", "post Mpps", "retrain ms");
  auto nm = make_nm("tuplemerge", s);
  nm->build(rules);
  Rng rng{37};
  const size_t updates_per_epoch = rules.size() / 20;
  for (int epoch = 1; epoch <= 4; ++epoch) {
    for (size_t i = 0; i < updates_per_epoch; ++i) {
      const uint32_t victim = static_cast<uint32_t>(rng.below(rules.size()));
      Rule moved = rules[victim];
      if (!nm->erase(victim)) continue;
      nm->insert(moved);
    }
    const double pre = mpps(measure_ns_per_packet(*nm, trace, 1));
    const uint64_t t0 = now_ns();
    nm->rebuild();
    const double retrain_ms = static_cast<double>(now_ns() - t0) / 1e6;
    const double post = mpps(measure_ns_per_packet(*nm, trace, 1));
    std::printf("%-6d | %12.2f %12.2f %12.1f\n", epoch, pre, post, retrain_ms);
    std::fflush(stdout);
  }
  std::printf("\nsustained-rate estimate: updates/sec such that the remainder stays\n"
              "below ~10%% between retrains = 0.10 * n / retrain_seconds (paper: ~4k/s\n"
              "at 500K with minute-long TF training; our trainer shifts it far higher)\n");

  // (c) online subsystem on the epoch read path. Phase 1 (offered load):
  // a controller pushes batched bursts at a fixed offered rate while the
  // main thread runs verified scalar lookups — every answer checked against
  // the linear oracle before/during/after the background retrain-swaps.
  // Lookups take NO lock (one epoch-slot CAS + an acquire load per lookup),
  // so mpps_during is bounded by CPU share, not by lock convoys: the old
  // rwlock path collapsed 2.33→0.72 Mpps under the same kind of churn.
  std::printf("\n-- (c) online subsystem, epoch read path: verified lookups + batched churn --\n");
  const RuleSet base = generate_classbench(AppClass::kAcl, 2,
                                           std::min<size_t>(s.large_n, 50'000), 41);
  OnlineConfig ocfg;
  ocfg.base.remainder_factory = [] { return std::make_unique<TupleMerge>(); };
  ocfg.base.min_iset_coverage = 0.05;
  ocfg.retrain_threshold = 0.08;
  OnlineNuevoMatch online{ocfg};
  online.build(base);

  const StableCore core = make_stable_core(base, s.trace_len, 42);
  std::printf("base %zu rules, verification core %zu packets, threshold %.0f%%\n",
              base.size(), core.packets.size(), ocfg.retrain_threshold * 100);

  std::atomic<uint64_t> mismatches{0};
  const auto verified_pass = [&]() -> double {  // ns/packet over the core
    const uint64_t t0 = now_ns();
    for (size_t i = 0; i < core.packets.size(); ++i) {
      if (online.match(core.packets[i]).rule_id != core.expected[i])
        mismatches.fetch_add(1);
    }
    return static_cast<double>(now_ns() - t0) /
           static_cast<double>(core.packets.size());
  };

  const double before_ns = verified_pass();
  const uint64_t gen_before = online.generations();

  // Controller thread: bursts of worse-priority clone inserts plus backlog
  // erase bursts, one insert_batch/erase_batch commit each, paced to a fixed
  // offered rate (the paper's deployment story: a controller pushes rule
  // changes at some rate; the question is what the data path keeps doing).
  constexpr size_t kBurst = 32;
  constexpr auto kBurstPeriod = std::chrono::microseconds(1500);
  std::atomic<bool> churn{true};
  std::atomic<uint64_t> ops{0};
  std::thread updater([&] {
    Rng urng{43};
    std::deque<uint32_t> backlog;
    uint32_t next_id = 1'000'000;
    std::vector<Rule> burst(kBurst);
    std::vector<uint32_t> dead(kBurst);
    while (churn.load(std::memory_order_relaxed)) {
      for (size_t i = 0; i < kBurst; ++i) {
        Rule& r = burst[i];
        r = base[urng.below(base.size())];
        r.id = next_id++;
        r.priority = 2'000'000 + static_cast<int32_t>(r.id);
        backlog.push_back(r.id);
      }
      ops.fetch_add(online.insert_batch(burst), std::memory_order_relaxed);
      if (backlog.size() > 512) {
        for (size_t i = 0; i < kBurst; ++i) {
          dead[i] = backlog.front();
          backlog.pop_front();
        }
        ops.fetch_add(online.erase_batch(dead), std::memory_order_relaxed);
      }
      std::this_thread::sleep_for(kBurstPeriod);
    }
  });

  const uint64_t t_churn0 = now_ns();
  const uint64_t deadline = t_churn0 + uint64_t{60} * 1'000'000'000;
  double during_ns = 0.0;
  int during_passes = 0;
  while ((online.generations() == gen_before || during_passes < 3) &&
         now_ns() < deadline) {
    during_ns += verified_pass();
    ++during_passes;
  }
  churn.store(false);
  updater.join();
  const double churn_secs = static_cast<double>(now_ns() - t_churn0) / 1e9;
  const uint64_t total_ops = ops.load();
  online.quiesce();
  const uint64_t swaps = online.generations() - gen_before;
  const size_t reused = online.last_retrain_reused_isets();
  const double after_ns = verified_pass();

  during_ns = during_passes > 0 ? during_ns / during_passes : 0.0;
  std::printf("%-22s | %12s %12s %12s\n", "phase", "Mpps", "updates/s", "swaps");
  std::printf("%-22s | %12.2f %12s %12s\n", "before churn", mpps(before_ns), "-", "-");
  std::printf("%-22s | %12.2f %12.0f %12llu\n", "during churn+retrain",
              mpps(during_ns), static_cast<double>(total_ops) / churn_secs,
              static_cast<unsigned long long>(swaps));
  std::printf("%-22s | %12.2f %12s %12s\n", "after quiesce", mpps(after_ns), "-", "-");
  std::printf("verified lookups: %llu mismatches (must be 0); absorption now %.2f%%; "
              "last retrain reused %zu iSet model(s)\n",
              static_cast<unsigned long long>(mismatches.load()),
              online.absorption() * 100, reused);

  BenchJson j{"updates_online"};
  j.row()
      .set("section", "online_single")
      .set("rules", base.size())
      .set("updates_per_sec", static_cast<double>(total_ops) / churn_secs)
      .set("mpps_before", mpps(before_ns))
      .set("mpps_during", mpps(during_ns))
      .set("mpps_after", mpps(after_ns))
      .set("swaps", static_cast<size_t>(swaps))
      .set("reused_isets", reused)
      .set("mismatches", static_cast<size_t>(mismatches.load()));

  // (c) phase 2: saturated update ceiling — a writer spinning flat out,
  // single-op commits vs batched commits, with one verified reader still
  // racing every swap (its Mpps here records CPU fair-share under writer
  // saturation on one core, not lock behavior — the reader holds no lock).
  std::printf("\n-- (c2) saturated update ceiling (writer spins, reader verifies) --\n");
  std::printf("%-14s | %12s %12s %7s\n", "commit mode", "updates/s", "rd Mpps", "mism");
  for (const bool batched : {false, true}) {
    std::atomic<bool> halt{false};
    std::atomic<uint64_t> sat_ops{0};
    std::atomic<uint64_t> sat_bad{0};
    std::atomic<uint64_t> rd_packets{0};
    std::thread reader([&] {
      size_t i = 0;
      while (!halt.load(std::memory_order_relaxed)) {
        const size_t k = i++ % core.packets.size();
        if (online.match(core.packets[k]).rule_id != core.expected[k])
          sat_bad.fetch_add(1);
        rd_packets.fetch_add(1, std::memory_order_relaxed);
      }
    });
    const uint64_t s0 = now_ns();
    std::thread writer([&] {
      Rng wrng{batched ? 47u : 46u};
      std::deque<uint32_t> backlog;
      uint32_t next_id = batched ? 400'000'000u : 300'000'000u;
      std::vector<Rule> burst(kBurst);
      std::vector<uint32_t> dead(kBurst);
      while (!halt.load(std::memory_order_relaxed)) {
        if (batched) {
          for (size_t i = 0; i < kBurst; ++i) {
            Rule& r = burst[i];
            r = base[wrng.below(base.size())];
            r.id = next_id++;
            r.priority = 2'000'000 + static_cast<int32_t>(r.id & 0xFFFFF);
            backlog.push_back(r.id);
          }
          sat_ops.fetch_add(online.insert_batch(burst), std::memory_order_relaxed);
          if (backlog.size() > 512) {
            for (size_t i = 0; i < kBurst; ++i) {
              dead[i] = backlog.front();
              backlog.pop_front();
            }
            sat_ops.fetch_add(online.erase_batch(dead), std::memory_order_relaxed);
          }
        } else {
          Rule r = base[wrng.below(base.size())];
          r.id = next_id++;
          r.priority = 2'000'000 + static_cast<int32_t>(r.id & 0xFFFFF);
          if (online.insert(r)) {
            backlog.push_back(r.id);
            sat_ops.fetch_add(1, std::memory_order_relaxed);
          }
          if (backlog.size() > 256) {
            if (online.erase(backlog.front()))
              sat_ops.fetch_add(1, std::memory_order_relaxed);
            backlog.pop_front();
          }
        }
      }
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(1200));
    halt.store(true);
    writer.join();
    const double sat_secs = static_cast<double>(now_ns() - s0) / 1e9;
    reader.join();
    online.quiesce();
    const double rate = static_cast<double>(sat_ops.load()) / sat_secs;
    const double rd_mpps =
        static_cast<double>(rd_packets.load()) / 1e6 / sat_secs;
    std::printf("%-14s | %12.0f %12.2f %7llu\n",
                batched ? "batch-32" : "single-op", rate, rd_mpps,
                static_cast<unsigned long long>(sat_bad.load()));
    std::fflush(stdout);
    mismatches.fetch_add(sat_bad.load());
    j.row()
        .set("section", batched ? "online_saturated_batch" : "online_saturated_single")
        .set("rules", base.size())
        .set("updates_per_sec", rate)
        .set("reader_mpps", rd_mpps)
        .set("mismatches", static_cast<size_t>(sat_bad.load()));
  }

  // Competitor context: raw update rates of update-native engines on the
  // same rule-set — what an online classifier can at best approach (the gap
  // is the price of the learned index's retraining). TupleMerge is the
  // engine NuevoMatch wraps; TSS is the classic hash-per-tuple structure
  // (the RVH-style hash-table baseline family — PAPERS.md); sorted-list is
  // the naive priority-ordered array a minimal controller might keep.
  std::printf("\n-- competitor context: update-native engines, raw update rate --\n");
  std::printf("%-22s | %12s\n", "engine", "updates/s");
  {
    TupleMerge tm_upd;
    tm_upd.build(base);
    const double r_tm = competitor_updates_per_sec(tm_upd, base, 100'000, 55);
    TupleSpaceSearch tss_upd;
    tss_upd.build(base);
    const double r_tss = competitor_updates_per_sec(tss_upd, base, 100'000, 56);
    LinearSearch sorted_upd;
    sorted_upd.build(base);
    // O(n) memmove per op: fewer scheduled ops, same rate metric.
    const double r_sl = competitor_updates_per_sec(sorted_upd, base, 20'000, 57);
    std::printf("%-22s | %12.0f\n", "tuplemerge", r_tm);
    std::printf("%-22s | %12.0f\n", "tss (RVH-style hash)", r_tss);
    std::printf("%-22s | %12.0f\n", "sorted list", r_sl);
    j.row().set("section", "competitor").set("engine", "tuplemerge")
        .set("rules", base.size()).set("updates_per_sec", r_tm);
    j.row().set("section", "competitor").set("engine", "tss_rvh_style")
        .set("rules", base.size()).set("updates_per_sec", r_tss);
    j.row().set("section", "competitor").set("engine", "sorted_list")
        .set("rules", base.size()).set("updates_per_sec", r_sl);
  }

  // (d) multi-writer batch commits under SATURATED parallel-engine readers.
  // This is the configuration that used to starve writers outright (PR 3
  // measured ~0 updates/s without a reader duty-cycle workaround, and
  // NEGATIVE scaling with it: 0.38x at 4 writers). Methodology: each writer
  // pushes a FIXED offered load (controller-style paced bursts) and the row
  // records the aggregate applied rate — the question is whether W writers
  // deliver W times the updates while two readers spin flat out, which is
  // exactly what reader-preference and per-op locking used to deny. (The
  // saturated single-writer ceiling — ~10-100x any row here — is section
  // (c2)'s number; at writer saturation on one core, adding writers can
  // only split the same CPU, so a saturated scaling row would measure the
  // scheduler, not the engine.)
  std::printf("\n-- (d) multi-writer offered-load absorption + saturated parallel readers --\n");
  std::printf("%-8s %-7s | %12s %10s %12s %7s %6s\n", "writers", "shards",
              "updates/s", "vs 1w", "lookups", "swaps", "mism");
  const RuleSet mw_base = generate_classbench(
      AppClass::kAcl, 1, std::min<size_t>(s.large_n, 30'000), 61);
  const StableCore mw_core = make_stable_core(mw_base, s.trace_len / 2, 62);
  uint64_t mw_bad_total = 0;
  double upd_1w = 0.0;
  for (const int writers : {1, 2, 4}) {
    OnlineConfig mcfg;
    mcfg.base.remainder_factory = [] { return std::make_unique<TupleMerge>(); };
    mcfg.base.min_iset_coverage = 0.05;
    mcfg.retrain_threshold = 0.05;
    mcfg.update_shards = writers;
    OnlineNuevoMatch mw{mcfg};
    mw.build(mw_base);
    const uint64_t g0 = mw.generations();

    std::atomic<bool> halt_writers{false};
    std::atomic<bool> halt_readers{false};
    std::atomic<uint64_t> mw_ops{0};
    std::atomic<uint64_t> mw_lookups{0};
    std::atomic<uint64_t> mw_bad{0};
    std::vector<std::thread> rd;
    for (int t = 0; t < 2; ++t) {
      rd.emplace_back([&, t] {
        // Saturated: no duty cycle, no yield — back-to-back pinned batches.
        BatchParallelEngine engine{mw};
        std::vector<MatchResult> out(kDefaultBatchSize);
        size_t off = static_cast<size_t>(t) * 64 % mw_core.packets.size();
        while (!halt_readers.load(std::memory_order_relaxed)) {
          const size_t len =
              std::min(kDefaultBatchSize, mw_core.packets.size() - off);
          engine.classify({mw_core.packets.data() + off, len}, {out.data(), len});
          for (size_t i = 0; i < len; ++i) {
            if (out[i].rule_id != mw_core.expected[off + i]) mw_bad.fetch_add(1);
          }
          mw_lookups.fetch_add(len, std::memory_order_relaxed);
          off = (off + len) % mw_core.packets.size();
        }
      });
    }
    std::vector<std::thread> wr;
    const uint64_t w0 = now_ns();
    for (int w = 0; w < writers; ++w) {
      wr.emplace_back([&, w] {
        // Deficit-paced controller: ~25k offered ops/s per writer. The
        // writer works back-to-back while behind its target curve and
        // sleeps only when ahead, so scheduler wakeup latency on the
        // oversubscribed core cannot silently shrink the offered load.
        constexpr double kOfferedPerWriter = 25'000.0;
        Rng wrng{static_cast<uint64_t>(100 + w)};
        std::deque<uint32_t> backlog;
        uint32_t next_id = 10'000'000 + static_cast<uint32_t>(w) * 100'000'000;
        std::vector<Rule> burst(kBurst);
        std::vector<uint32_t> dead(kBurst);
        const uint64_t t_start = now_ns();
        uint64_t issued = 0;
        while (!halt_writers.load(std::memory_order_relaxed)) {
          const double due = kOfferedPerWriter *
                             (static_cast<double>(now_ns() - t_start) / 1e9);
          if (static_cast<double>(issued) > due) {
            std::this_thread::sleep_for(std::chrono::microseconds(500));
            continue;
          }
          for (size_t i = 0; i < kBurst; ++i) {
            Rule& r = burst[i];
            r = mw_base[wrng.below(mw_base.size())];
            r.id = next_id++;
            r.priority = 2'000'000 + static_cast<int32_t>(r.id & 0xFFFFF);
            backlog.push_back(r.id);
          }
          mw_ops.fetch_add(mw.insert_batch(burst), std::memory_order_relaxed);
          issued += kBurst;
          if (backlog.size() > 256) {
            for (size_t i = 0; i < kBurst; ++i) {
              dead[i] = backlog.front();
              backlog.pop_front();
            }
            mw_ops.fetch_add(mw.erase_batch(dead), std::memory_order_relaxed);
            issued += kBurst;
          }
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1500));
    halt_writers.store(true);
    for (auto& th : wr) th.join();
    const double w_secs = static_cast<double>(now_ns() - w0) / 1e9;
    halt_readers.store(true);
    for (auto& th : rd) th.join();
    mw.quiesce();

    const double upd_rate = static_cast<double>(mw_ops.load()) / w_secs;
    if (writers == 1) upd_1w = upd_rate;
    const uint64_t mw_swaps = mw.generations() - g0;
    mw_bad_total += mw_bad.load();
    std::printf("%-8d %-7d | %12.0f %9.2fx %12llu %7llu %6llu\n", writers,
                mw.update_shards(), upd_rate,
                upd_1w > 0.0 ? upd_rate / upd_1w : 1.0,
                static_cast<unsigned long long>(mw_lookups.load()),
                static_cast<unsigned long long>(mw_swaps),
                static_cast<unsigned long long>(mw_bad.load()));
    std::fflush(stdout);
    j.row()
        .set("section", "multi_writer")
        .set("writers", static_cast<size_t>(writers))
        .set("shards", static_cast<size_t>(mw.update_shards()))
        .set("rules", mw_base.size())
        .set("updates_per_sec", upd_rate)
        .set("scaling_vs_1w", upd_1w > 0.0 ? upd_rate / upd_1w : 1.0)
        .set("verified_lookups", static_cast<size_t>(mw_lookups.load()))
        .set("swaps", static_cast<size_t>(mw_swaps))
        .set("mismatches", static_cast<size_t>(mw_bad.load()));
  }

  // (e) writer progress vs reader saturation: one saturated single-op
  // writer against a growing wall of spinning scalar readers. The PR 3
  // rwlock drove this to ~0 updates/s at 2 readers; the epoch path costs
  // the writer only its CPU share.
  std::printf("\n-- (e) writer progress under saturated readers (starvation check) --\n");
  std::printf("%-8s | %12s %14s\n", "readers", "updates/s", "lookups/s");
  for (const int n_readers : {0, 2, 4}) {
    OnlineConfig pcfg;
    pcfg.base.remainder_factory = [] { return std::make_unique<TupleMerge>(); };
    pcfg.base.min_iset_coverage = 0.05;
    pcfg.retrain_threshold = 1.0;  // isolate the commit path from retrains
    pcfg.auto_retrain = false;
    OnlineNuevoMatch pr{pcfg};
    pr.build(mw_base);

    std::atomic<bool> halt{false};
    std::atomic<uint64_t> pr_ops{0};
    std::atomic<uint64_t> pr_lookups{0};
    std::atomic<uint64_t> pr_bad{0};
    std::vector<std::thread> rd;
    for (int t = 0; t < n_readers; ++t) {
      rd.emplace_back([&, t] {
        size_t i = static_cast<size_t>(t) * 29;
        while (!halt.load(std::memory_order_relaxed)) {
          const size_t k = i++ % mw_core.packets.size();
          if (pr.match(mw_core.packets[k]).rule_id != mw_core.expected[k])
            pr_bad.fetch_add(1);
          pr_lookups.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    const uint64_t p0 = now_ns();
    std::thread writer([&] {
      Rng wrng{77};
      std::deque<uint32_t> backlog;
      uint32_t next_id = 600'000'000;
      while (!halt.load(std::memory_order_relaxed)) {
        Rule r = mw_base[wrng.below(mw_base.size())];
        r.id = next_id++;
        r.priority = 2'000'000 + static_cast<int32_t>(r.id & 0xFFFFF);
        if (pr.insert(r)) {
          backlog.push_back(r.id);
          pr_ops.fetch_add(1, std::memory_order_relaxed);
        }
        if (backlog.size() > 256) {
          if (pr.erase(backlog.front())) pr_ops.fetch_add(1, std::memory_order_relaxed);
          backlog.pop_front();
        }
      }
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(800));
    halt.store(true);
    writer.join();
    for (auto& th : rd) th.join();
    const double p_secs = static_cast<double>(now_ns() - p0) / 1e9;
    const double op_rate = static_cast<double>(pr_ops.load()) / p_secs;
    mw_bad_total += pr_bad.load();
    std::printf("%-8d | %12.0f %14.0f\n", n_readers, op_rate,
                static_cast<double>(pr_lookups.load()) / p_secs);
    std::fflush(stdout);
    j.row()
        .set("section", "writer_progress")
        .set("readers", static_cast<size_t>(n_readers))
        .set("rules", mw_base.size())
        .set("updates_per_sec", op_rate)
        .set("lookups_per_sec", static_cast<double>(pr_lookups.load()) / p_secs)
        .set("mismatches", static_cast<size_t>(pr_bad.load()));
  }
  std::printf("note: one hardware core on this container — saturated threads "
              "timeshare, so\nthe scaling rows measure CPU-share recovery (the "
              "thing reader-preference used\nto deny writers); multi-core hosts "
              "add real concurrency on top\n");

  // (f) replicated-pipeline readers during churn: the reader side is the
  // REAL dataplane — a 2-replica TraceSource -> FlowCache -> Classifier ->
  // Sink graph on a 2-thread Click-style scheduler, all replicas fanned
  // into the churning engine — instead of a hand-rolled lookup loop. Each
  // pass is a fresh ReplicatedGraph (runs are one-shot); every merged
  // record is checked against the stable core, so this row both prices and
  // verifies the scheduler path under a saturated writer.
  std::printf("\n-- (f) replicated-pipeline readers during churn --\n");
  {
    OnlineConfig pcfg;
    pcfg.base.remainder_factory = [] { return std::make_unique<TupleMerge>(); };
    pcfg.base.min_iset_coverage = 0.05;
    pcfg.retrain_threshold = 1.0;
    pcfg.auto_retrain = false;
    auto pr = std::make_shared<OnlineNuevoMatch>(pcfg);
    pr->build(mw_base);
    const uint64_t f_gen0 = pr->generations();

    std::atomic<bool> halt{false};
    std::atomic<uint64_t> f_ops{0};
    std::thread writer([&] {
      Rng wrng{99};
      std::deque<uint32_t> backlog;
      uint32_t next_id = 700'000'000;
      uint64_t committed = 0;
      while (!halt.load(std::memory_order_relaxed)) {
        Rule r = mw_base[wrng.below(mw_base.size())];
        r.id = next_id++;
        r.priority = 2'000'000 + static_cast<int32_t>(r.id & 0xFFFFF);
        if (pr->insert(r)) {
          backlog.push_back(r.id);
          f_ops.fetch_add(1, std::memory_order_relaxed);
        }
        if (backlog.size() > 256) {
          if (pr->erase(backlog.front()))
            f_ops.fetch_add(1, std::memory_order_relaxed);
          backlog.pop_front();
        }
        if (++committed % 4096 == 0) pr->retrain_now();  // fire-and-forget
      }
    });

    uint64_t f_pkts = 0, f_records = 0, f_bad = 0, f_passes = 0;
    const uint64_t f0 = now_ns();
    while (now_ns() - f0 < 800'000'000ull) {
      pipeline::ReplicatedGraph rg{2u, [&](uint32_t, uint32_t) {
                                     pipeline::Graph g;
                                     auto& src = g.add(
                                         std::make_unique<pipeline::TraceSource>(
                                             mw_core.packets),
                                         "src");
                                     auto& cache =
                                         g.add(std::make_unique<
                                                   pipeline::FlowCacheElement>(4096),
                                               "cache");
                                     auto cls_owned = std::make_unique<
                                         pipeline::ClassifierElement>();
                                     cls_owned->attach(pr);
                                     auto& cls = g.add(std::move(cls_owned), "cls");
                                     auto& sink = g.add(
                                         std::make_unique<pipeline::Sink>(true),
                                         "sink");
                                     g.connect(src, 0, cache);
                                     g.connect(cache, 0, cls);
                                     g.connect(cls, 0, sink);
                                     return g;
                                   }};
      pipeline::ReplicatedRunOptions ropts;
      ropts.threads = 2;
      f_pkts += rg.run(ropts);
      for (const pipeline::Sink::Record& r : rg.merged_records()) {
        ++f_records;
        if (r.index >= mw_core.expected.size() ||
            r.rule_id != mw_core.expected[r.index])
          ++f_bad;
      }
      ++f_passes;
    }
    halt.store(true);
    writer.join();
    pr->quiesce();
    const double f_secs = static_cast<double>(now_ns() - f0) / 1e9;
    const double f_mpps = static_cast<double>(f_pkts) / f_secs / 1e6;
    const double f_rate = static_cast<double>(f_ops.load()) / f_secs;
    const uint64_t f_swaps = pr->generations() - f_gen0;
    mw_bad_total += f_bad;
    std::printf("%zu passes | %8.2f Mpps | %10.0f updates/s | %llu swaps | "
                "%llu records checked\n",
                static_cast<size_t>(f_passes), f_mpps, f_rate,
                static_cast<unsigned long long>(f_swaps),
                static_cast<unsigned long long>(f_records));
    j.row()
        .set("section", "replicated_readers_churn")
        .set("replicas", size_t{2})
        .set("threads", size_t{2})
        .set("rules", mw_base.size())
        .set("mpps", f_mpps)
        .set("updates_per_sec", f_rate)
        .set("swaps", static_cast<size_t>(f_swaps))
        .set("records_checked", static_cast<size_t>(f_records))
        .set("mismatches", static_cast<size_t>(f_bad));
  }

  j.write("BENCH_updates.json");

  if (mismatches.load() != 0 || mw_bad_total != 0) {
    std::fprintf(stderr, "FAIL: lookups diverged from the linear oracle\n");
    return 1;
  }
  if (swaps == 0)
    std::printf("note: no background swap observed before the deadline "
                "(increase churn time or lower the threshold)\n");
  return 0;
}
