// Figure 9: single-core throughput speedup of NuevoMatch (with early
// termination) over CutSplit, NeuroCuts and TupleMerge on the ClassBench
// suite. This is the repo's headline measured (not projected) experiment.
// Paper: geometric mean 2.4x / 2.6x / 1.6x over cs / nc / tm at 500K.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

using namespace nuevomatch;
using namespace nuevomatch::bench;

int main() {
  const Scale s = bench_scale();
  print_header("Figure 9: ClassBench single-core throughput speedup",
               "paper Fig. 9 (GM 2.4x/2.6x/1.6x vs cs/nc/tm @500K)");

  const std::vector<std::string> baselines{"cutsplit", "neurocuts", "tuplemerge"};
  std::printf("%-8s %10s | %-42s\n", "ruleset", "n", "throughput speedup nm/baseline");
  std::printf("%-8s %10s | %12s %12s %12s\n", "", "", "cutsplit", "neurocuts",
              "tuplemerge");

  std::vector<std::vector<double>> speedups(baselines.size());
  for (const auto& [app, variant] : s.suite) {
    const RuleSet rules = generate_classbench(app, variant, s.large_n, 1);
    const auto trace = uniform_trace(rules, s);
    std::printf("%-8s %10zu |", ruleset_name(app, variant).c_str(), rules.size());
    for (size_t b = 0; b < baselines.size(); ++b) {
      auto base = make_baseline(baselines[b], s);
      base->build(rules);
      const double base_ns = measure_ns_per_packet(*base, trace, s.reps);

      auto nm = make_nm(baselines[b], s);
      nm->build(rules);
      const double nm_ns = measure_ns_per_packet(*nm, trace, s.reps);

      const double speedup = base_ns / nm_ns;
      speedups[b].push_back(speedup);
      std::printf(" %11.2fx", speedup);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("%-8s %10s |", "GM", "");
  for (size_t b = 0; b < baselines.size(); ++b)
    std::printf(" %11.2fx", geometric_mean(speedups[b]));
  std::printf("\n\npaper @500K: GM 2.40x (cs), 2.60x (nc), 1.60x (tm); "
              "single-core latency speedup equals throughput speedup (Sec 5.2)\n");
  return 0;
}
