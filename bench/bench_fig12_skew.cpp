// Figure 12: NuevoMatch speedup under skewed traffic — Zipf skews from the
// paper's axis (80..95% of traffic in the top 3% of flows), a CAIDA-like
// locality-preserving trace, and CAIDA* (restricted L3). Paper: speedups
// shrink as skew rises (caches absorb the locality), and grow back when L3
// is contended.
//
// CAIDA* substitution: Intel CAT is unavailable here, so L3 contention is
// emulated by sweeping a 16MB buffer between batches, evicting the
// classifier's working set (same mechanism the paper's multi-tenant setting
// produces). See DESIGN.md.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "common/zipf.hpp"

using namespace nuevomatch;
using namespace nuevomatch::bench;

namespace {

std::vector<uint8_t> g_thrash(16 * 1024 * 1024);

/// Evict the classifier's working set from L3 (CAIDA* emulation).
void thrash_cache() {
  for (size_t i = 0; i < g_thrash.size(); i += 64) g_thrash[i] += 1;
}

double measure_contended(const Classifier& cls, std::span<const Packet> trace) {
  int64_t sink = 0;
  constexpr size_t kBatch = 128;
  uint64_t total = 0;
  for (size_t off = 0; off < trace.size(); off += kBatch) {
    thrash_cache();
    const size_t len = std::min(kBatch, trace.size() - off);
    const uint64_t t0 = now_ns();
    for (size_t i = 0; i < len; ++i) sink += cls.match(trace[off + i]).rule_id;
    total += now_ns() - t0;
  }
  g_sink = sink;
  return static_cast<double>(total) / static_cast<double>(trace.size());
}

}  // namespace

int main() {
  const Scale s = bench_scale();
  print_header("Figure 12: skewed traffic (Zipf / CAIDA-like / CAIDA*)",
               "paper Fig. 12 (nm/cs 2.06..1.62x, nm/tm 1.14..0.89x; CAIDA* higher)");

  const RuleSet rules = generate_classbench(AppClass::kAcl, 1, s.large_n, 1);

  struct Setting {
    const char* name;
    TraceConfig::Kind kind;
    double alpha;
    bool contended;
  };
  const std::vector<Setting> settings{
      {"Zipf80(a=1.05)", TraceConfig::Kind::kZipf, 1.05, false},
      {"Zipf85(a=1.10)", TraceConfig::Kind::kZipf, 1.10, false},
      {"Zipf90(a=1.15)", TraceConfig::Kind::kZipf, 1.15, false},
      {"Zipf95(a=1.25)", TraceConfig::Kind::kZipf, 1.25, false},
      {"CAIDA-like", TraceConfig::Kind::kCaidaLike, 1.2, false},
      {"CAIDA*(contended)", TraceConfig::Kind::kCaidaLike, 1.2, true},
  };

  // Build engines once; traffic pattern is the variable.
  CutSplit cs;
  cs.build(rules);
  TupleMerge tm;
  tm.build(rules);
  auto nm_cs = make_nm("cutsplit", s);
  nm_cs->build(rules);
  auto nm_tm = make_nm("tuplemerge", s);
  nm_tm->build(rules);

  std::printf("%-18s | %12s %12s\n", "traffic", "nm/cs", "nm/tm");
  for (const Setting& st : settings) {
    TraceConfig tc;
    tc.kind = st.kind;
    tc.zipf_alpha = st.alpha;
    tc.n_packets = s.trace_len;
    const auto trace = generate_trace(rules, tc);
    const auto run = [&](const Classifier& c) {
      return st.contended ? measure_contended(c, trace)
                          : measure_ns_per_packet(c, trace, s.reps);
    };
    const double x_cs = run(cs) / run(*nm_cs);
    const double x_tm = run(tm) / run(*nm_tm);
    std::printf("%-18s | %11.2fx %11.2fx\n", st.name, x_cs, x_tm);
    std::fflush(stdout);
  }
  std::printf("\npaper: nm/cs 2.06, 1.95, 1.84, 1.62, 1.79, 2.26; "
              "nm/tm 1.14, 1.06, 0.99, 0.89, 1.05, 1.16\n");
  return 0;
}
