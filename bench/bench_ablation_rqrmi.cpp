// Ablation bench (beyond the paper, motivated by DESIGN.md): which RQ-RMI
// design choices buy what? Sweeps stage widths (Table 4's knob), sampling
// density, and Adam refinement on/off against achieved error bound,
// training time and model size — on the same iSet workload.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "isets/iset_index.hpp"
#include "isets/partition.hpp"

using namespace nuevomatch;
using namespace nuevomatch::bench;

namespace {

void run_case(const char* label, const IsetPartition::Iset& iset,
              rqrmi::RqRmiConfig cfg, std::span<const Packet> trace, int reps) {
  IsetIndex idx;
  const uint64_t t0 = now_ns();
  idx.build(iset.field, iset.rules, cfg);
  const double train_ms = static_cast<double>(now_ns() - t0) / 1e6;
  const double lookup_ns = measure_ns_per_packet_fn(
      [&](const Packet& p) { return idx.lookup(p).rule_id; }, trace, reps);
  std::printf("%-26s | %10.1f %10u %12.1f %10.1f\n", label, train_ms,
              idx.max_search_error(), lookup_ns,
              static_cast<double>(idx.model_bytes()) / 1024.0);
  std::fflush(stdout);
}

}  // namespace

int main() {
  const Scale s = bench_scale();
  print_header("Ablation: RQ-RMI design choices",
               "extension of paper Sec 5.3 (stage widths, sampling, optimizer)");

  const RuleSet rules = generate_classbench(AppClass::kAcl, 1, s.large_n, 1);
  IsetPartitionConfig pc;
  pc.max_isets = 1;
  pc.min_coverage_fraction = 0.01;
  const IsetPartition part = partition_rules(rules, pc);
  if (part.isets.empty()) {
    std::printf("no iSet extracted; nothing to ablate\n");
    return 0;
  }
  const auto& iset = part.isets[0];
  const auto trace = uniform_trace(rules, s, 41);
  std::printf("iSet: field=%d rules=%zu\n\n", iset.field, iset.rules.size());
  std::printf("%-26s | %10s %10s %12s %10s\n", "variant", "train ms", "bound",
              "lookup ns", "model KB");

  const auto base = rqrmi::default_config(iset.rules.size());

  // Stage width sweep (Table 4's axis).
  for (const auto& widths :
       std::vector<std::vector<uint32_t>>{{1, 4}, {1, 4, 16}, {1, 4, 128}, {1, 8, 256},
                                          {1, 8, 512}}) {
    auto cfg = base;
    cfg.stage_widths = widths;
    std::string label = "widths={";
    for (size_t i = 0; i < widths.size(); ++i) {
      if (i > 0) label += ',';
      label += std::to_string(widths[i]);
    }
    label += "}";
    run_case(label.c_str(), iset, cfg, trace, s.reps);
  }

  // Sampling density sweep.
  for (int samples : {64, 256, 1024, 4096}) {
    auto cfg = base;
    cfg.initial_samples = samples;
    run_case(("samples=" + std::to_string(samples)).c_str(), iset, cfg, trace, s.reps);
  }

  // Optimizer: least-squares only vs +Adam refinement.
  {
    auto cfg = base;
    cfg.adam_epochs = 0;
    run_case("least-squares only", iset, cfg, trace, s.reps);
    cfg.adam_epochs = 100;
    run_case("LS + Adam(100)", iset, cfg, trace, s.reps);
    cfg.adam_epochs = 400;
    run_case("LS + Adam(400)", iset, cfg, trace, s.reps);
  }
  return 0;
}
