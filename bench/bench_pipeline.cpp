// End-to-end dataplane pipeline benchmark -> BENCH_pipeline.json.
//
// Measures the full element-graph path the serving scenarios use —
//
//   TraceSource -> FlowCache(C) -> Classifier(OnlineNuevoMatch) -> Sink
//
// — in packets/second over a skewed (zipf) trace, as a function of the
// flow-cache capacity (capacity 0 = no cache element at all), in two
// regimes:
//
//   (a) steady state: rules frozen; the cache converges to the skew's
//       working set and the classifier only sees the miss residue (the
//       paper's §5.2 OVS argument, now measured through the real pipeline
//       rather than simulated);
//   (b) during churn: a writer thread commits insert/erase bursts and
//       periodic forced retrain/swap cycles the whole run. Every commit
//       bumps the coherence stamp and invalidates the cache — the hit-rate
//       collapse and the `stale` column price exactly what update
//       coherence costs, which an incoherent cache would silently skip
//       (and serve wrong answers instead).
//
//   $ ./bench_pipeline            (NM_BENCH_SCALE=full for paper sizes)
#include <atomic>
#include <thread>

#include "bench_common.hpp"
#include "common/failpoint.hpp"
#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "nuevomatch/online.hpp"
#include "pipeline/elements.hpp"
#include "pipeline/graph.hpp"
#include "pipeline/replicate.hpp"

using namespace nuevomatch;
using namespace nuevomatch::bench;

namespace {

struct RunResult {
  double mpps = 0.0;
  double hit_rate = 0.0;
  uint64_t stale = 0;
  uint64_t retained = 0;  ///< hits on entries that survived >=1 commit
  uint64_t future = 0;    ///< hits on entries fresher than the probe's view
};

/// Build the graph, pump the trace `reps + 1` times (first pass warms the
/// model caches AND the flow cache). Steady state reports the best measured
/// pass (standard bench methodology); during churn it reports the MEAN over
/// the measured passes — best-of would systematically pick the pass where
/// the concurrent writer happened to be inside a retrain quiesce, i.e. the
/// least-churned window. Stats (hit rate / stale) are per-pass deltas over
/// exactly the window(s) the throughput number describes.
RunResult run_pipeline(const std::shared_ptr<OnlineNuevoMatch>& online,
                       const std::vector<Packet>& trace, size_t cache_capacity,
                       int reps, bool mean_of_passes) {
  pipeline::Graph g;
  auto& src = g.add(std::make_unique<pipeline::TraceSource>(trace), "src");
  pipeline::FlowCacheElement* cache = nullptr;
  auto cls_owned = std::make_unique<pipeline::ClassifierElement>();
  cls_owned->attach(online);
  auto& cls = g.add(std::move(cls_owned), "cls");
  auto& sink = g.add(std::make_unique<pipeline::Sink>(), "sink");
  if (cache_capacity > 0) {
    cache = &g.add(std::make_unique<pipeline::FlowCacheElement>(cache_capacity),
                   "cache");
    g.connect(src, 0, *cache);
    g.connect(*cache, 0, cls);
  } else {
    g.connect(src, 0, cls);
  }
  g.connect(cls, 0, sink);

  RunResult out;
  double best_ns = 1e300;
  double sum_ns = 0.0;
  uint64_t sum_pkts = 0;
  // Per-pass deltas via Stats::operator-; rates via Stats::hit_rate(), whose
  // denominator lookups() = hits + misses + stale is the single accounting
  // every consumer of these numbers shares.
  pipeline::FlowCache::Stats sum{}, best{};
  for (int pass = 0; pass <= reps; ++pass) {
    src.rewind();
    const pipeline::FlowCache::Stats s0 =
        cache != nullptr ? cache->cache().stats() : pipeline::FlowCache::Stats{};
    const uint64_t t0 = now_ns();
    const uint64_t n = g.run();
    const uint64_t t1 = now_ns();
    if (pass == 0) continue;  // warm-up (model caches AND the flow cache)
    const pipeline::FlowCache::Stats s1 =
        cache != nullptr ? cache->cache().stats() : pipeline::FlowCache::Stats{};
    const pipeline::FlowCache::Stats d = s1 - s0;
    sum_ns += static_cast<double>(t1 - t0);
    sum_pkts += n;
    sum.hits += d.hits;
    sum.misses += d.misses;
    sum.stale += d.stale;
    sum.retained += d.retained;
    sum.future += d.future;
    const double ns = static_cast<double>(t1 - t0) / static_cast<double>(n);
    if (ns < best_ns) {
      best_ns = ns;
      best = d;
    }
  }
  const pipeline::FlowCache::Stats& pick = mean_of_passes ? sum : best;
  out.mpps = mean_of_passes ? static_cast<double>(sum_pkts) * 1e3 / sum_ns
                            : mpps(best_ns);
  out.hit_rate = pick.lookups() == 0 ? 0.0 : pick.hit_rate();
  out.stale = pick.stale;
  out.retained = pick.retained;
  out.future = pick.future;
  return out;
}

/// (c) per-core scaling: the same graph shape replicated N ways — RSS split
/// across the sources, per-replica flow caches, one shared engine — driven
/// by the Click-style scheduler on N threads. A ReplicatedGraph run is
/// one-shot, so every pass builds a fresh instance (flow caches start cold
/// each pass; the model caches stay warm after the first).
double run_replicated(const std::shared_ptr<OnlineNuevoMatch>& online,
                      const std::vector<Packet>& trace, size_t cache_capacity,
                      size_t threads, int reps) {
  double best_ns = 1e300;
  for (int pass = 0; pass <= reps; ++pass) {
    pipeline::ReplicatedGraph rg{
        static_cast<uint32_t>(threads), [&](uint32_t, uint32_t) {
          pipeline::Graph g;
          auto& src = g.add(std::make_unique<pipeline::TraceSource>(trace), "src");
          auto& cache = g.add(
              std::make_unique<pipeline::FlowCacheElement>(cache_capacity),
              "cache");
          auto cls_owned = std::make_unique<pipeline::ClassifierElement>();
          cls_owned->attach(online);
          auto& cls = g.add(std::move(cls_owned), "cls");
          auto& sink = g.add(std::make_unique<pipeline::Sink>(), "sink");
          g.connect(src, 0, cache);
          g.connect(cache, 0, cls);
          g.connect(cls, 0, sink);
          return g;
        }};
    pipeline::ReplicatedRunOptions ropts;
    ropts.threads = threads;
    const uint64_t t0 = now_ns();
    const uint64_t n = rg.run(ropts);
    const uint64_t t1 = now_ns();
    if (pass == 0) continue;  // model-cache warm-up
    const double ns = static_cast<double>(t1 - t0) / static_cast<double>(n);
    if (ns < best_ns) best_ns = ns;
  }
  return mpps(best_ns);
}

/// (d) fault recovery: the same replicated graph, supervised with
/// SupervisorPolicy::kQuarantine, with a replica crash injected mid-stream
/// through the pipeline.task.fire failpoint. Reports throughput over the
/// whole run (crash + recovery included) and the supervisor's measured
/// recovery latency (quiesce -> re-steer -> drain -> rejoin, from
/// PipelineHealth::recovery_ns). `crash_fire == 0` runs the same supervised
/// configuration with no failpoint armed — the baseline that prices the
/// supervision machinery itself (pump-closure pause checks, watchdog beats).
struct FaultResult {
  double mpps = 0.0;
  double recovery_us = 0.0;  ///< mean over measured passes
  uint64_t quarantines = 0;
  uint64_t rejoins = 0;
  uint64_t drained = 0;
};

FaultResult run_fault_recovery(const std::shared_ptr<OnlineNuevoMatch>& online,
                               const std::vector<Packet>& trace,
                               size_t cache_capacity, size_t threads,
                               uint64_t crash_fire, int reps) {
  FaultResult out;
  double sum_ns = 0.0;
  double sum_recovery_ns = 0.0;
  uint64_t sum_pkts = 0;
  int measured = 0;
  for (int pass = 0; pass <= reps; ++pass) {
    // The nth counter is consumed by the crash, so each pass re-arms it.
    if (crash_fire > 0)
      failpoint::arm(failpoint::kPipelineTaskFire,
                     failpoint::Trigger::nth(crash_fire));
    pipeline::ReplicatedGraph rg{
        static_cast<uint32_t>(threads), [&](uint32_t, uint32_t) {
          pipeline::Graph g;
          auto& src = g.add(std::make_unique<pipeline::TraceSource>(trace), "src");
          auto& cache = g.add(
              std::make_unique<pipeline::FlowCacheElement>(cache_capacity),
              "cache");
          auto cls_owned = std::make_unique<pipeline::ClassifierElement>();
          cls_owned->attach(online);
          auto& cls = g.add(std::move(cls_owned), "cls");
          auto& sink = g.add(std::make_unique<pipeline::Sink>(), "sink");
          g.connect(src, 0, cache);
          g.connect(cache, 0, cls);
          g.connect(cls, 0, sink);
          return g;
        }};
    pipeline::ReplicatedRunOptions ropts;
    ropts.threads = threads;
    ropts.policy = pipeline::SupervisorPolicy::kQuarantine;
    const uint64_t t0 = now_ns();
    const uint64_t n = rg.run(ropts);
    const uint64_t t1 = now_ns();
    failpoint::disarm(failpoint::kPipelineTaskFire);
    if (pass == 0) continue;  // model-cache warm-up
    ++measured;
    sum_ns += static_cast<double>(t1 - t0);
    sum_pkts += n;
    const pipeline::PipelineHealth ph = rg.health();
    sum_recovery_ns += static_cast<double>(ph.recovery_ns);
    for (const pipeline::ReplicaHealth& rh : ph.replicas) {
      out.quarantines += rh.quarantines;
      out.rejoins += rh.rejoins;
      out.drained += rh.drained_entries;
    }
  }
  // Mean, not best-of: best-of a crash run would pick the pass where the
  // crash landed latest (least re-classified residue) and undersell the
  // recovery cost the section exists to price.
  out.mpps = sum_ns > 0.0 ? static_cast<double>(sum_pkts) * 1e3 / sum_ns : 0.0;
  out.recovery_us = measured > 0 ? sum_recovery_ns / measured / 1e3 : 0.0;
  return out;
}

}  // namespace

int main() {
  const Scale s = bench_scale();
  print_header("Pipeline: end-to-end element graph (cache -> classifier)",
               "ISSUE 5 (dataplane pipeline); paper §5.2 cache-miss path");

  const size_t n_rules = s.full ? 500'000 : 50'000;
  const RuleSet rules = generate_classbench(AppClass::kAcl, 2, n_rules, 3);
  TraceConfig tc;
  tc.kind = TraceConfig::Kind::kZipf;
  tc.zipf_alpha = 1.1;
  tc.n_packets = s.trace_len;
  const std::vector<Packet> trace = generate_trace(rules, tc);

  OnlineConfig ocfg;
  ocfg.base.remainder_factory = [] { return std::make_unique<TupleMerge>(); };
  ocfg.base.min_iset_coverage = 0.05;
  ocfg.auto_retrain = false;  // churn section forces retrains explicitly
  auto online = std::make_shared<OnlineNuevoMatch>(ocfg);
  online->build(rules);

  BenchJson json{"pipeline"};
  const size_t caps[] = {0, 1024, 8192, 65536};

  // (a) steady state ---------------------------------------------------------
  std::printf("\n(a) steady state, zipf(%.2f) x %zu packets, %zu rules\n",
              tc.zipf_alpha, trace.size(), rules.size());
  std::printf("%-14s %10s %12s\n", "flow cache", "Mpps", "hit rate");
  for (const size_t cap : caps) {
    const RunResult r = run_pipeline(online, trace, cap, s.reps, /*mean_of_passes=*/false);
    const std::string label = cap == 0 ? "none" : std::to_string(cap);
    std::printf("%-14s %10.2f %11.1f%%\n", label.c_str(), r.mpps,
                r.hit_rate * 100);
    json.row()
        .set("section", "steady")
        .set("cache", label)
        .set("mpps", r.mpps)
        .set("hit_rate", r.hit_rate);
  }

  // (b) during churn ---------------------------------------------------------
  // A writer commits 64-op insert+erase bursts back-to-back and forces a
  // retrain/swap every 64 bursts; the pipeline classifies the same trace
  // throughout. Inserted rules carry strictly-worse priorities, so the
  // decision stream stays comparable across rows.
  std::printf("\n(b) during churn (batched writer + forced retrain swaps)\n");
  std::printf("%-14s %10s %12s %10s %10s %9s %8s\n", "flow cache", "Mpps",
              "hit rate", "stale", "retained", "updates", "swaps");
  for (const size_t cap : caps) {
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> updates{0};
    const uint64_t gen0 = online->generations();
    std::thread writer{[&] {
      std::vector<Rule> burst(64);
      std::vector<uint32_t> ids(64);
      uint32_t next_id = 50'000'000;
      uint64_t bursts = 0;
      Rng rng{17};
      while (!stop.load(std::memory_order_relaxed)) {
        for (size_t i = 0; i < burst.size(); ++i) {
          burst[i] = rules[rng.below(rules.size())];
          burst[i].id = next_id;
          burst[i].priority = 8'000'000 + static_cast<int32_t>(next_id % 1024);
          ids[i] = next_id++;
        }
        updates.fetch_add(online->insert_batch(burst), std::memory_order_relaxed);
        updates.fetch_add(online->erase_batch(ids), std::memory_order_relaxed);
        // Fire-and-forget: the background worker trains while commits keep
        // landing (quiescing here would park the writer for whole retrains
        // and leave the measured window churn-free).
        if (++bursts % 64 == 0) online->retrain_now();
      }
    }};
    const RunResult r = run_pipeline(online, trace, cap, s.reps, /*mean_of_passes=*/true);
    stop.store(true);
    writer.join();
    online->quiesce();
    const uint64_t swaps = online->generations() - gen0;
    const std::string label = cap == 0 ? "none" : std::to_string(cap);
    std::printf("%-14s %10.2f %11.1f%% %10llu %10llu %8.2gM %8llu\n",
                label.c_str(), r.mpps, r.hit_rate * 100,
                static_cast<unsigned long long>(r.stale),
                static_cast<unsigned long long>(r.retained),
                static_cast<double>(updates.load()) / 1e6,
                static_cast<unsigned long long>(swaps));
    json.row()
        .set("section", "churn")
        .set("cache", label)
        .set("mpps", r.mpps)
        .set("hit_rate", r.hit_rate)
        .set("stale", static_cast<size_t>(r.stale))
        .set("bands", static_cast<size_t>(OnlineNuevoMatch::kCoherenceBands))
        .set("retained", static_cast<size_t>(r.retained))
        .set("future", static_cast<size_t>(r.future))
        .set("updates", static_cast<size_t>(updates.load()))
        .set("swaps", static_cast<size_t>(swaps));
  }

  // (c) per-core scaling -----------------------------------------------------
  // N pipeline replicas on N scheduler threads, one shared engine. On real
  // multi-core hardware this is where the per-core replication pays off;
  // this container exposes ONE hardware core, so the threads time-slice it
  // and the honest numbers below show overhead, not speedup — the row for
  // hw_cores records that caveat machine-readably.
  const unsigned hw_cores = std::thread::hardware_concurrency();
  std::printf("\n(c) per-core scaling (replicated graph, cache 65536, "
              "%u hardware core%s)\n",
              hw_cores, hw_cores == 1 ? "" : "s");
  std::printf("%-10s %10s %12s\n", "threads", "Mpps", "vs 1-thread");
  double mpps_1 = 0.0;
  for (const size_t threads : {size_t{1}, size_t{2}, size_t{4}}) {
    const double m = run_replicated(online, trace, 65536, threads, s.reps);
    if (threads == 1) mpps_1 = m;
    const double scale = mpps_1 > 0.0 ? m / mpps_1 : 0.0;
    std::printf("%-10zu %10.2f %11.2fx\n", threads, m, scale);
    json.row()
        .set("section", "scaling")
        .set("threads", threads)
        .set("hw_cores", static_cast<size_t>(hw_cores))
        .set("mpps", m)
        .set("scale_vs_1", scale);
  }

  // (d) fault recovery -------------------------------------------------------
  // Two replicas, two scheduler threads, quarantine supervision. "clean" is
  // the supervised run with no fault armed (prices the supervision overhead
  // against section (c)'s unsupervised 2-thread row); "crash" injects one
  // replica death mid-stream via pipeline.task.fire and measures whole-run
  // throughput WITH the quarantine -> re-steer -> drain -> rejoin ladder
  // inside the timed window, plus the supervisor's own recovery-latency
  // measurement. The crash lands at the 3rd scheduled fire, i.e. after the
  // pipeline is flowing but with most of the trace still ahead — worst case
  // for the re-steered survivors.
  std::printf("\n(d) fault recovery (2 replicas, quarantine + rejoin, "
              "cache 65536)\n");
  std::printf("%-10s %10s %14s %13s %9s %9s\n", "mode", "Mpps", "recovery us",
              "quarantines", "rejoins", "drained");
  for (const uint64_t crash_fire : {uint64_t{0}, uint64_t{3}}) {
    const FaultResult f =
        run_fault_recovery(online, trace, 65536, 2, crash_fire, s.reps);
    const char* mode = crash_fire == 0 ? "clean" : "crash";
    std::printf("%-10s %10.2f %14.1f %13llu %9llu %9llu\n", mode, f.mpps,
                f.recovery_us, static_cast<unsigned long long>(f.quarantines),
                static_cast<unsigned long long>(f.rejoins),
                static_cast<unsigned long long>(f.drained));
    json.row()
        .set("section", "fault")
        .set("mode", std::string{mode})
        .set("mpps", f.mpps)
        .set("recovery_us", f.recovery_us)
        .set("quarantines", static_cast<size_t>(f.quarantines))
        .set("rejoins", static_cast<size_t>(f.rejoins))
        .set("drained", static_cast<size_t>(f.drained));
  }

  // (e) telemetry overhead ---------------------------------------------------
  // The same steady-state single-graph run (cache 8192) with the hot-path
  // instrumentation ON vs gated OFF at runtime. The DESIGN.md "Telemetry"
  // budget is <=2% — this row is the evidence. Honest caveat: the runtime
  // gate still costs one relaxed bool load per instrumented site; the true
  // zero is -DNM_METRICS=OFF, which compiles those sites out entirely and
  // cannot be measured from inside one binary.
  std::printf("\n(e) telemetry overhead (steady state, cache 8192)\n");
  std::printf("%-14s %10s %12s\n", "metrics", "Mpps", "overhead");
  // A delta this small drowns in single-core machine-state drift if one arm
  // always runs first — interleave the arms (on/off rounds back to back)
  // and take each arm's best, so both sample the same thermal/scheduling
  // conditions and best-of discards the unlucky rounds.
  RunResult t_on{}, t_off{};
  for (int round = 0; round < 4; ++round) {
    telemetry::set_metrics_enabled(true);
    const RunResult a = run_pipeline(online, trace, 8192, s.reps, false);
    if (a.mpps > t_on.mpps) t_on = a;
    telemetry::set_metrics_enabled(false);
    const RunResult b = run_pipeline(online, trace, 8192, s.reps, false);
    if (b.mpps > t_off.mpps) t_off = b;
  }
  telemetry::set_metrics_enabled(true);
  const double overhead_pct =
      t_off.mpps > 0.0 ? (t_off.mpps - t_on.mpps) / t_off.mpps * 100.0 : 0.0;
  std::printf("%-14s %10.2f %11s\n", "on", t_on.mpps, "-");
  std::printf("%-14s %10.2f %11.2f%%\n", "off (runtime)", t_off.mpps,
              overhead_pct);
  json.row()
      .set("section", "telemetry")
      .set("metrics", std::string{"on"})
      .set("mpps", t_on.mpps);
  json.row()
      .set("section", "telemetry")
      .set("metrics", std::string{"off"})
      .set("mpps", t_off.mpps)
      .set("overhead_pct", overhead_pct);

  if (json.write("BENCH_pipeline.json"))
    std::printf("\nwrote BENCH_pipeline.json\n");
  std::printf("(single hardware core on this container: the pipeline thread\n"
              " and the churn writer share it — see DESIGN.md Substitutions)\n");
  return 0;
}
