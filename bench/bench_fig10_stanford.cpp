// Figure 10: NuevoMatch vs TupleMerge on the four Stanford-backbone
// forwarding tables (~183K single-field rules each).
// Paper: 3.5x higher throughput, 7.5x lower latency (two-core projection).
#include <cstdio>

#include "bench_common.hpp"
#include "classbench/stanford.hpp"

using namespace nuevomatch;
using namespace nuevomatch::bench;

int main() {
  const Scale s = bench_scale();
  // RQ-RMI training is fast enough to run the real dataset size even in
  // quick mode; the memory-wall contrast with tm only appears once the tm
  // tables outgrow L2, which needs the full 183K rules.
  const size_t n = kStanfordRules;
  print_header("Figure 10: Stanford backbone, nm(tm) vs tm",
               "paper Fig. 10 (3.5x throughput, 7.5x latency over tm)");
  std::printf("%-8s %9s | %10s %10s %8s | %10s %10s %8s | %9s\n", "router", "rules",
              "tm Mpps", "nm Mpps", "tput x", "tm ns/pkt", "nm ns/pkt", "lat x",
              "coverage");

  std::vector<double> tput_speedups, lat_speedups;
  for (int router = 1; router <= 4; ++router) {
    const RuleSet rules = generate_stanford_like(router, n, 2020);
    const auto trace = uniform_trace(rules, s, 7);

    TupleMerge tm;
    tm.build(rules);
    const double t_tm = measure_ns_per_packet(tm, trace, s.reps);

    auto nm = make_nm("tuplemerge", s);
    nm->build(rules);
    const double t_nm = measure_ns_per_packet(*nm, trace, s.reps);
    // Two-core projection for latency, as in Figure 8's model.
    const double t_isets = measure_ns_per_packet_fn(
        [&](const Packet& p) { return nm->match_isets(p).rule_id; }, trace, s.reps);
    const double t_rem = measure_ns_per_packet_fn(
        [&](const Packet& p) { return nm->remainder().match(p).rule_id; }, trace, s.reps);
    const double t_nm2 = std::max(t_isets, t_rem);

    const double tput_x = t_tm / t_nm;
    const double lat_x = t_tm / t_nm2;
    tput_speedups.push_back(tput_x);
    lat_speedups.push_back(lat_x);
    std::printf("%-8d %9zu | %10.2f %10.2f %7.2fx | %10.1f %10.1f %7.2fx | %8.1f%%\n",
                router, rules.size(), mpps(t_tm), mpps(t_nm), tput_x, t_tm, t_nm, lat_x,
                nm->coverage() * 100.0);
    std::fflush(stdout);
  }
  std::printf("GM: throughput %.2fx  latency %.2fx   (paper: 3.5x / 7.5x)\n",
              geometric_mean(tput_speedups), geometric_mean(lat_speedups));
  return 0;
}
