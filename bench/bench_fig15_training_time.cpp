// Figure 15 + §5.3.4: RQ-RMI training time vs the maximum search-distance
// bound, per rule-set size — and the companion measurement that larger
// bounds barely hurt lookups (secondary search is a binary search).
// Paper: training with bound 64 is expensive (up to ~30min under TF);
// bounds >=128 train much faster with minor lookup impact.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "isets/iset_index.hpp"
#include "isets/partition.hpp"

using namespace nuevomatch;
using namespace nuevomatch::bench;

int main() {
  const Scale s = bench_scale();
  print_header("Figure 15: training time vs search-distance bound",
               "paper Fig. 15 (+ search-cost-vs-bound analysis of Sec 5.3.4)");

  std::vector<size_t> sizes{10'000, 100'000};
  if (s.full) sizes.push_back(500'000);
  // The paper sweeps 64..1024 because TensorFlow training rarely achieves
  // tight bounds on the first attempt. Our trainer reaches ~10-20 on its
  // first fit, so the retraining regime — the left, expensive side of the
  // paper's curve — lives at tighter bounds; sweep those too.
  const std::vector<uint32_t> bounds{2, 4, 8, 16, 64, 256, 1024};

  std::printf("%-9s %-7s | %12s %12s %14s %12s\n", "rules", "bound", "train ms",
              "achieved", "lookup ns/pkt", "model KB");
  for (size_t n : sizes) {
    const RuleSet rules = generate_classbench(AppClass::kAcl, 1, n, 1);
    // Train on the largest iSet — the structure the bound actually governs.
    IsetPartitionConfig pc;
    pc.max_isets = 1;
    pc.min_coverage_fraction = 0.01;
    IsetPartition part = partition_rules(rules, pc);
    if (part.isets.empty()) continue;
    const auto& iset = part.isets[0];
    const auto trace = uniform_trace(rules, s, 5);

    for (uint32_t bound : bounds) {
      auto cfg = rqrmi::default_config(iset.rules.size());
      cfg.error_threshold = bound;
      IsetIndex idx;
      const uint64_t t0 = now_ns();
      idx.build(iset.field, iset.rules, cfg);
      const double train_ms = static_cast<double>(now_ns() - t0) / 1e6;

      const double lookup_ns = measure_ns_per_packet_fn(
          [&](const Packet& p) { return idx.lookup(p).rule_id; }, trace, s.reps);
      std::printf("%-9zu %-7u | %12.1f %12u %14.1f %12.1f\n", n, bound, train_ms,
                  idx.max_search_error(), lookup_ns,
                  static_cast<double>(idx.model_bytes()) / 1024.0);
      std::fflush(stdout);
    }
  }
  std::printf("\nnote: C++ trainer replaces the paper's TensorFlow (minutes -> ms);\n"
              "the tradeoff SHAPE (tighter bound = more retraining) is preserved\n");
  return 0;
}
