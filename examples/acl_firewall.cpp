// ACL firewall scenario: a virtual network function filtering traffic with a
// large access-control list (the paper's motivating workload, §1). Generates
// a ClassBench-style ACL, accelerates TupleMerge with NuevoMatch, and
// compares throughput and index memory on a uniform trace.
//
//   $ ./acl_firewall [n_rules]          (default 50000)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "classbench/generator.hpp"
#include "nuevomatch/nuevomatch.hpp"
#include "trace/trace.hpp"
#include "tuplemerge/tuplemerge.hpp"

using namespace nuevomatch;

namespace {

double throughput_mpps(const Classifier& cls, const std::vector<Packet>& trace) {
  int64_t sink = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (const Packet& p : trace) sink += cls.match(p).rule_id;
  const auto t1 = std::chrono::steady_clock::now();
  const double ns =
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  static volatile int64_t g_sink; g_sink = sink; (void)g_sink;
  return static_cast<double>(trace.size()) * 1e3 / ns;
}

}  // namespace

int main(int argc, char** argv) {
  const size_t n = argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 50'000;
  std::printf("generating ACL rule-set with %zu rules...\n", n);
  const RuleSet rules = generate_classbench(AppClass::kAcl, 1, n, 1);

  TraceConfig tc;
  tc.n_packets = 200'000;
  const auto trace = generate_trace(rules, tc);

  std::printf("building TupleMerge baseline...\n");
  TupleMerge tm;
  tm.build(rules);

  std::printf("building NuevoMatch (TupleMerge remainder)...\n");
  NuevoMatchConfig cfg;
  cfg.remainder_factory = [] { return std::make_unique<TupleMerge>(); };
  cfg.min_iset_coverage = 0.05;
  cfg.max_isets = 4;
  NuevoMatch nm{cfg};
  const auto b0 = std::chrono::steady_clock::now();
  nm.build(rules);
  const auto build_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                            std::chrono::steady_clock::now() - b0)
                            .count();

  std::printf("\n%-22s %12s %14s\n", "engine", "Mpps", "index bytes");
  std::printf("%-22s %12.2f %14zu\n", "tuplemerge", throughput_mpps(tm, trace),
              tm.memory_bytes());
  std::printf("%-22s %12.2f %14zu\n", nm.name().c_str(), throughput_mpps(nm, trace),
              nm.memory_bytes());
  std::printf("\nnm: coverage %.1f%% across %zu iSets, remainder %zu rules, "
              "trained in %lld ms\n",
              nm.coverage() * 100.0, nm.isets().size(), nm.remainder_size(),
              static_cast<long long>(build_ms));
  std::printf("compression: %.1fx smaller index\n",
              static_cast<double>(tm.memory_bytes()) /
                  static_cast<double>(nm.memory_bytes()));
  return 0;
}
