// Train-offline / serve-online deployment flow (paper Section 5.3.4 makes
// training the expensive step, so production systems ship trained weights):
//
//   1. "Control plane": generate a rule-set, train a NuevoMatch classifier,
//      serialize it to a file.
//   2. "Data plane": load the file — no retraining — and serve lookups,
//      verifying the loaded classifier against the freshly trained one.
//
//   $ ./model_deploy [n_rules]
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "classbench/generator.hpp"
#include "nuevomatch/nuevomatch.hpp"
#include "serialize/serialize.hpp"
#include "trace/trace.hpp"
#include "tuplemerge/tuplemerge.hpp"

using namespace nuevomatch;

namespace {

NuevoMatchConfig make_config() {
  NuevoMatchConfig cfg;
  cfg.remainder_factory = [] { return std::make_unique<TupleMerge>(); };
  cfg.min_iset_coverage = 0.05;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const size_t n = argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 20'000;
  const std::string path = "/tmp/nuevomatch_model.bin";

  // --- control plane: train + save ----------------------------------------
  const RuleSet rules = generate_classbench(AppClass::kAcl, 1, n, 42);
  NuevoMatch trained{make_config()};
  trained.build(rules);
  const auto bytes = serialize::save_classifier(trained);
  if (!serialize::write_file(path, bytes)) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("trained on %zu rules: coverage %.1f%%, %zu iSets, model %.1f KB\n",
              rules.size(), trained.coverage() * 100.0, trained.isets().size(),
              static_cast<double>(trained.memory_bytes()) / 1024.0);
  std::printf("saved %zu bytes to %s\n", bytes.size(), path.c_str());

  // --- data plane: load + serve --------------------------------------------
  const auto blob = serialize::read_file(path);
  if (!blob) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return 1;
  }
  auto served = serialize::load_classifier(*blob, make_config());
  if (!served) {
    std::fprintf(stderr, "model file is corrupt\n");
    return 1;
  }
  std::printf("loaded without retraining: coverage %.1f%%, max search error %u\n",
              served->coverage() * 100.0, served->max_search_error());

  // Smoke-verify the loaded classifier on live traffic.
  TraceConfig tc;
  tc.n_packets = 50'000;
  tc.seed = 7;
  size_t mismatches = 0;
  for (const Packet& p : generate_trace(rules, tc)) {
    if (served->match(p).rule_id != trained.match(p).rule_id) ++mismatches;
  }
  std::printf("verified on %zu packets: %zu mismatches\n",
              static_cast<size_t>(tc.n_packets), mismatches);
  return mismatches == 0 ? 0 : 1;
}
