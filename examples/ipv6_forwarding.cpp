// IPv6 forwarding with 128-bit destination addresses (paper Section 4,
// "Handling long fields"): builds the same route table under both long-field
// encodings — SPLIT into 32-bit sub-fields vs a single lossy FLOAT key — and
// shows why split is the right default for IPv6.
//
//   $ ./ipv6_forwarding [n_routes]
#include <cstdio>
#include <cstdlib>

#include "wide/wide.hpp"
#include "wide/wide_index.hpp"

using namespace nuevomatch;
using namespace nuevomatch::wide;

int main(int argc, char** argv) {
  const size_t n = argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 20'000;
  const WideRuleSet routes = generate_ipv6_rules(n, 2026);
  std::printf("IPv6 route table: %zu routes under 2001:db8::/32\n", routes.size());
  std::printf("example route: %s .. %s -> port %d\n\n",
              to_string(routes[0].field[0].lo).c_str(),
              to_string(routes[0].field[0].hi).c_str(), routes[0].action);

  WideLinearSearch oracle;
  oracle.build(routes);
  const auto traffic = generate_wide_trace(routes, 20'000, 5);

  for (const Encoding enc : {Encoding::kSplit, Encoding::kFloat}) {
    WideClassifier::Config cfg;
    cfg.encoding = enc;
    WideClassifier fib;
    fib.build(routes, cfg);

    size_t mismatches = 0;
    for (const WidePacket& p : traffic) {
      if (fib.match(p).rule_id != oracle.match(p).rule_id) ++mismatches;
    }
    std::printf("encoding %-8s: coverage %5.1f%%  iSets %zu  remainder %zu"
                "  model %.1f KB  mismatches %zu\n",
                to_string(enc).c_str(), fib.coverage() * 100.0, fib.isets().size(),
                fib.remainder_size(),
                static_cast<double>(fib.model_bytes()) / 1024.0, mismatches);
  }

  std::printf("\nboth encodings classify correctly (validation runs on the\n"
              "original 128-bit fields); only SPLIT keeps enough key precision\n"
              "for the partitioner to move routes out of the linear remainder\n");
  return 0;
}
