// Open vSwitch cache-miss path scenario (paper §5.2, "Open vSwitch applies
// caching for most frequently used rules. It invokes Tuple Space Search upon
// cache misses. If NuevoMatch is applied at this stage, we expect gains
// equivalent to those reported for unskewed workloads.").
//
// We simulate exactly that: a small exact-match flow cache (the EMC) in
// front of either TSS or NuevoMatch. Skewed traffic mostly hits the cache;
// the misses — a near-uniform residue — go to the slow path, where
// NuevoMatch shines.
//
//   $ ./ovs_cache_accel [n_rules]       (default 50000)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <unordered_map>

#include "classbench/generator.hpp"
#include "nuevomatch/nuevomatch.hpp"
#include "trace/trace.hpp"
#include "tuplemerge/tuplemerge.hpp"

using namespace nuevomatch;

namespace {

/// Minimal exact-match flow cache keyed by the full 5-tuple.
class FlowCache {
 public:
  explicit FlowCache(size_t capacity) : capacity_(capacity) {}

  std::pair<bool, int32_t> lookup(const Packet& p) const {
    const auto it = map_.find(key(p));
    return it == map_.end() ? std::pair{false, int32_t{-1}} : std::pair{true, it->second};
  }
  void insert(const Packet& p, int32_t rule) {
    if (map_.size() >= capacity_) map_.erase(map_.begin());  // crude eviction
    map_[key(p)] = rule;
  }

 private:
  static uint64_t key(const Packet& p) {
    uint64_t h = 14695981039346656037ull;
    for (uint32_t v : p.field) {
      h ^= v;
      h *= 1099511628211ull;
    }
    return h;
  }
  size_t capacity_;
  std::unordered_map<uint64_t, int32_t> map_;
};

struct SlowPathStats {
  double mpps = 0.0;
  double hit_rate = 0.0;
};

SlowPathStats run(Classifier& slow_path, const std::vector<Packet>& trace) {
  FlowCache cache{4096};
  size_t hits = 0;
  int64_t sink = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (const Packet& p : trace) {
    const auto [hit, rule] = cache.lookup(p);
    if (hit) {
      ++hits;
      sink += rule;
      continue;
    }
    const MatchResult r = slow_path.match(p);  // the TSS / nm stage
    cache.insert(p, r.rule_id);
    sink += r.rule_id;
  }
  const auto t1 = std::chrono::steady_clock::now();
  static volatile int64_t g_sink; g_sink = sink; (void)g_sink;
  const double ns =
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  return {static_cast<double>(trace.size()) * 1e3 / ns,
          static_cast<double>(hits) / static_cast<double>(trace.size())};
}

}  // namespace

int main(int argc, char** argv) {
  const size_t n = argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 50'000;
  std::printf("OVS-style pipeline: exact-match cache -> slow-path classifier\n");
  const RuleSet rules = generate_classbench(AppClass::kAcl, 2, n, 3);

  TraceConfig tc;
  tc.kind = TraceConfig::Kind::kZipf;  // realistic skewed tenant traffic
  tc.zipf_alpha = 1.1;
  tc.n_packets = 300'000;
  const auto trace = generate_trace(rules, tc);

  TupleSpaceSearch tss;  // OVS's slow path
  tss.build(rules);
  NuevoMatchConfig cfg;
  cfg.remainder_factory = [] { return std::make_unique<TupleSpaceSearch>(); };
  cfg.min_iset_coverage = 0.05;
  NuevoMatch nm{cfg};
  nm.build(rules);

  const SlowPathStats a = run(tss, trace);
  const SlowPathStats b = run(nm, trace);
  std::printf("\n%-28s %10s %12s\n", "slow path", "Mpps", "cache hits");
  std::printf("%-28s %10.2f %11.1f%%\n", "tuple space search", a.mpps, a.hit_rate * 100);
  std::printf("%-28s %10.2f %11.1f%%\n", nm.name().c_str(), b.mpps, b.hit_rate * 100);
  std::printf("\nend-to-end speedup from accelerating only the miss path: %.2fx\n",
              b.mpps / a.mpps);
  std::printf("(cache absorbs the skew; the slow path sees near-uniform misses,\n"
              " which is precisely where the paper reports full nm gains)\n");
  return 0;
}
