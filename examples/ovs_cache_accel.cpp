// Open vSwitch cache-miss path scenario (paper §5.2, "Open vSwitch applies
// caching for most frequently used rules. It invokes Tuple Space Search upon
// cache misses. If NuevoMatch is applied at this stage, we expect gains
// equivalent to those reported for unskewed workloads.").
//
// Built on the dataplane pipeline (src/pipeline): the exact-match EMC is
// the shared pipeline::FlowCache element — the same update-coherent cache
// the router example and churn tests use — in front of either TSS or
// NuevoMatch:
//
//   TraceSource -> FlowCache(4096) -> Classifier(<slow path>) -> Sink
//
// Skewed traffic mostly hits the cache; the misses — a near-uniform
// residue — go to the slow path, where NuevoMatch shines. A third section
// churns rules through an ONLINE NuevoMatch while the cache serves: the
// coherence stamps invalidate cached decisions on every commit, so the
// cache stays correct under updates instead of silently serving stale
// decisions (the failure mode the old example-private cache had).
//
//   $ ./ovs_cache_accel [n_rules]       (default 50000)
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>

#include "classbench/generator.hpp"
#include "nuevomatch/nuevomatch.hpp"
#include "nuevomatch/online.hpp"
#include "pipeline/elements.hpp"
#include "pipeline/graph.hpp"
#include "trace/trace.hpp"
#include "tuplemerge/tuplemerge.hpp"

using namespace nuevomatch;

namespace {

struct SlowPathStats {
  double mpps = 0.0;
  double hit_rate = 0.0;
  uint64_t stale = 0;
};

/// One pipeline pass: cache -> attached slow path -> sink.
template <typename AttachFn>
SlowPathStats run(const std::vector<Packet>& trace, AttachFn&& attach) {
  pipeline::Graph g;
  auto& src = g.add(std::make_unique<pipeline::TraceSource>(trace), "src");
  auto& cache = g.add(std::make_unique<pipeline::FlowCacheElement>(4096), "cache");
  auto cls_elem = std::make_unique<pipeline::ClassifierElement>();
  attach(*cls_elem);
  auto& cls = g.add(std::move(cls_elem), "cls");
  auto& sink = g.add(std::make_unique<pipeline::Sink>(), "sink");
  g.connect(src, 0, cache);
  g.connect(cache, 0, cls);
  g.connect(cls, 0, sink);

  const auto t0 = std::chrono::steady_clock::now();
  const uint64_t n = g.run();
  const auto t1 = std::chrono::steady_clock::now();
  const double ns =
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  const auto stats = cache.cache().stats();
  return {static_cast<double>(n) * 1e3 / ns, stats.hit_rate(), stats.stale};
}

}  // namespace

int main(int argc, char** argv) {
  const size_t n = argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 50'000;
  std::printf("OVS-style pipeline: exact-match cache -> slow-path classifier\n");
  const RuleSet rules = generate_classbench(AppClass::kAcl, 2, n, 3);

  TraceConfig tc;
  tc.kind = TraceConfig::Kind::kZipf;  // realistic skewed tenant traffic
  tc.zipf_alpha = 1.1;
  tc.n_packets = 300'000;
  const auto trace = generate_trace(rules, tc);

  auto tss = std::make_shared<TupleSpaceSearch>();  // OVS's slow path
  tss->build(rules);
  NuevoMatchConfig cfg;
  cfg.remainder_factory = [] { return std::make_unique<TupleSpaceSearch>(); };
  cfg.min_iset_coverage = 0.05;
  auto nm = std::make_shared<NuevoMatch>(cfg);
  nm->build(rules);
  const std::string nm_name = nm->name();

  const SlowPathStats a =
      run(trace, [&](pipeline::ClassifierElement& c) { c.attach_scalar(tss); });
  const SlowPathStats b =
      run(trace, [&](pipeline::ClassifierElement& c) {
        c.attach_scalar(std::shared_ptr<const Classifier>(nm));
      });
  std::printf("\n%-28s %10s %12s\n", "slow path", "Mpps", "cache hits");
  std::printf("%-28s %10.2f %11.1f%%\n", "tuple space search", a.mpps,
              a.hit_rate * 100);
  std::printf("%-28s %10.2f %11.1f%%\n", nm_name.c_str(), b.mpps,
              b.hit_rate * 100);
  std::printf("\nend-to-end speedup from accelerating only the miss path: %.2fx\n",
              b.mpps / a.mpps);
  std::printf("(cache absorbs the skew; the slow path sees near-uniform misses,\n"
              " which is precisely where the paper reports full nm gains)\n");

  // --- the part the old example-private cache got wrong: live updates -----
  // Rules churn while the cache serves. Every accepted commit bumps the
  // online engine's coherence stamp, which invalidates cached decisions —
  // the `stale` counter below is cache entries rejected for exactly that
  // reason. With the old ad-hoc cache those lookups would have silently
  // served pre-update answers.
  OnlineConfig ocfg;
  ocfg.base.remainder_factory = [] { return std::make_unique<TupleMerge>(); };
  ocfg.base.min_iset_coverage = 0.05;
  ocfg.auto_retrain = false;
  auto online = std::make_shared<OnlineNuevoMatch>(ocfg);
  online->build(rules);

  std::atomic<bool> stop{false};
  std::thread churn{[&] {
    uint32_t next_id = 10'000'000;
    while (!stop.load(std::memory_order_relaxed)) {
      Rule r = rules[next_id % rules.size()];
      r.id = next_id++;
      r.priority = 5'000'000;  // strictly worse: decisions stay comparable
      online->insert(r);
      online->erase(r.id);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }};
  const SlowPathStats c =
      run(trace, [&](pipeline::ClassifierElement& e) { e.attach(online); });
  stop.store(true);
  churn.join();
  std::printf("\nunder churn (%s):  %6.2f Mpps, %.1f%% hits, "
              "%llu stale entries invalidated by update commits\n",
              online->name().c_str(), c.mpps, c.hit_rate * 100,
              static_cast<unsigned long long>(c.stale));
  return 0;
}
