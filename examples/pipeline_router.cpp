// Dataplane pipeline router: pcap in -> per-packet decisions out.
//
// Assembles the Click-style element graph from a textual config —
//
//   src   :: PcapSource(<trace.pcap>);
//   cache :: FlowCache(<capacity>);
//   cls   :: Classifier(<acl.rules>, manual);
//   disp  :: Dispatch(permit, deny);
//   src -> cache -> cls -> disp;
//   disp[0] -> Counter(permit) -> permit_sink;
//   disp[1] -> deny_sink;
//
// — runs the capture through it while forcing THREE background
// retrain/swap cycles mid-stream (the flow cache must stay coherent across
// every one), then differentially verifies each emitted decision against a
// scalar NuevoMatch::match oracle over the same rules. Exit status is the
// verification result, so CI can run this binary as a smoke test on the
// checked-in golden pcap:
//
// With a thread count, the SAME config is additionally replicated that many
// ways (RSS five-tuple split across the sources, per-replica flow caches,
// one shared engine) and run on a Click-style task scheduler — the merged
// replica decisions must be packet-for-packet identical to the scalar run:
//
// With --metrics the run also emits a final telemetry snapshot (registry
// counters/histograms joined with engine health + flow-cache stats):
//   --metrics         Prometheus text to stdout at exit
//   --metrics=FILE    dump to FILE at exit (JSON if FILE ends in .json)
//   --metrics=PORT    splice a MetricsExporter element into the pipeline and
//                     serve live scrapes on 127.0.0.1:PORT while running
//                     (snapshot still printed to stdout at exit)
//
//   $ ./example_pipeline_router trace.pcap acl.rules [cache_capacity] [threads]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "classbench/parser.hpp"
#include "common/failpoint.hpp"
#include "nuevomatch/nuevomatch.hpp"
#include "pipeline/elements.hpp"
#include "pipeline/graph.hpp"
#include "pipeline/replicate.hpp"
#include "pipeline/telemetry.hpp"
#include "trace/pcap.hpp"
#include "tuplemerge/tuplemerge.hpp"

using namespace nuevomatch;

namespace {

bool all_digits(const std::string& s) {
  return !s.empty() &&
         std::all_of(s.begin(), s.end(), [](char c) { return c >= '0' && c <= '9'; });
}

}  // namespace

int main(int argc, char** argv) {
  // Flag scan first; positionals keep their historical order.
  bool metrics = false;
  std::string metrics_arg;  // "" = stdout; digits = port; else = file path
  std::vector<const char*> pos;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--metrics") {
      metrics = true;
    } else if (a.rfind("--metrics=", 0) == 0) {
      metrics = true;
      metrics_arg = a.substr(10);
    } else {
      pos.push_back(argv[i]);
    }
  }
  if (pos.size() < 2 || pos.size() > 4) {
    std::fprintf(stderr,
                 "usage: %s <trace.pcap> <acl.rules> [cache_capacity] [threads]"
                 " [--metrics[=file|port]]\n",
                 argv[0]);
    return 2;
  }
  const std::string pcap_path = pos[0];
  const std::string rules_path = pos[1];
  const size_t cache_cap =
      pos.size() >= 3 ? std::strtoull(pos[2], nullptr, 10) : 8192;
  const size_t n_threads = pos.size() == 4 ? std::strtoull(pos[3], nullptr, 10) : 1;
  const bool metrics_port = metrics && all_digits(metrics_arg);

  // --- assemble the graph from config text --------------------------------
  // --metrics=PORT splices a MetricsExporter into the chain: it forwards
  // bursts untouched and answers live loopback scrapes from its inline poll.
  const std::string met_decl =
      metrics_port ? "met   :: MetricsExporter(port=" + metrics_arg + ");\n" : "";
  const std::string chain = metrics_port ? "src -> met -> cache -> cls -> disp;\n"
                                         : "src -> cache -> cls -> disp;\n";
  const std::string config =
      "src   :: PcapSource(" + pcap_path + ");\n"
      "cache :: FlowCache(" + std::to_string(cache_cap) + ");\n"
      "cls   :: Classifier(" + rules_path + ", manual);\n" +
      met_decl +
      "disp  :: Dispatch(permit, deny);\n"
      "permit_sink :: Sink(record);\n"
      "deny_sink   :: Sink(record);\n" +
      chain +
      "disp[0] -> Counter(permit) -> permit_sink;\n"
      "disp[1] -> deny_sink;\n";
  std::printf("pipeline config:\n%s\n", config.c_str());

  pipeline::Graph graph = pipeline::Graph::parse(config);
  auto* cls = graph.find_kind<pipeline::ClassifierElement>();
  OnlineNuevoMatch* online = cls->online();

  // --- run, forcing three retrain/swap cycles mid-stream ------------------
  // The pcap is small enough to pre-count (we need the packets for the
  // oracle anyway), so the swap points land at the trace quarters.
  size_t skipped = 0;
  std::string err;
  const auto packets = read_pcap_packets(pcap_path, &skipped, &err);
  if (!packets.has_value()) {
    std::fprintf(stderr, "cannot read %s: %s\n", pcap_path.c_str(), err.c_str());
    return 2;
  }
  const uint64_t total = packets->size();
  // Mid-stream means between two bursts: a trace that fits in one burst has
  // no interior boundary, so the three-swap demonstration is impossible —
  // say so instead of failing the oracle-clean run below.
  const bool can_swap_midstream = total > pipeline::kBurstSize;
  if (!can_swap_midstream) {
    std::printf("note: trace fits in one %zu-packet burst — no interior burst "
                "boundary, mid-stream swaps skipped\n",
                pipeline::kBurstSize);
  }
  const uint64_t gen0 = online->generations();
  uint64_t forced = 0;
  const auto force_swap = [&] {
    online->retrain_now();
    online->quiesce();  // make sure the swap lands while packets remain
    ++forced;
  };
  const uint64_t pumped = graph.run([&](uint64_t done) {
    if (done >= total) return;  // end-of-stream tick: no longer mid-stream
    // Swap at the quarter marks; a short trace (few bursts) has fewer
    // interior burst boundaries than quarters, so at the LAST interior
    // boundary the remaining quota lands there — all three swaps stay
    // strictly mid-stream even for the 2-burst golden pcap.
    while (forced < 3 && done * 4 >= (forced + 1) * total) force_swap();
    if (total - done <= pipeline::kBurstSize) {  // next burst is the final one
      while (forced < 3) force_swap();
    }
  });
  const uint64_t swaps = online->generations() - gen0;

  std::printf("processed %llu packets (%zu frames skipped)\n",
              static_cast<unsigned long long>(pumped), skipped);
  std::printf("forced retrain swaps mid-stream: %llu\n\n",
              static_cast<unsigned long long>(swaps));
  std::printf("element stats:\n%s\n", graph.report().c_str());

  // --- differential verification against the scalar oracle ----------------
  std::ifstream rin{rules_path};
  const RuleSet rules = parse_classbench(rin);
  NuevoMatchConfig ocfg;
  ocfg.remainder_factory = [] { return std::make_unique<TupleMerge>(); };
  ocfg.min_iset_coverage = 0.05;
  NuevoMatch oracle{ocfg};
  oracle.build(rules);

  // Merge both sinks' records back into arrival order.
  std::vector<pipeline::Sink::Record> decisions;
  for (const char* name : {"permit_sink", "deny_sink"}) {
    const auto& recs = static_cast<pipeline::Sink*>(graph.find(name))->records();
    decisions.insert(decisions.end(), recs.begin(), recs.end());
  }
  std::sort(decisions.begin(), decisions.end(),
            [](const auto& a, const auto& b) { return a.index < b.index; });

  // A mismatch on a lane the FlowCache served (Record::cached) is a STALE
  // decision — the exact failure class the per-band invalidation scheme
  // must prevent across the three forced swaps. Split it out so CI can
  // assert on it by name.
  uint64_t mismatches = 0;
  uint64_t stale_served = 0;
  uint64_t cache_served = 0;
  for (const auto& d : decisions) {
    cache_served += d.cached ? 1 : 0;
    const MatchResult want = oracle.match((*packets)[d.index]);
    if (want.rule_id != d.rule_id) {
      ++mismatches;
      if (d.cached) ++stale_served;
    }
  }
  const size_t show = std::min<size_t>(decisions.size(), 8);
  std::printf("first %zu decisions (packet -> rule):\n", show);
  for (size_t i = 0; i < show; ++i) {
    std::printf("  #%-4llu -> %s (rule %d)\n",
                static_cast<unsigned long long>(decisions[i].index),
                decisions[i].rule_id < 0 ? "deny " : "permit",
                decisions[i].rule_id);
  }

  std::printf("\noracle differential: %llu mismatches over %zu decisions\n",
              static_cast<unsigned long long>(mismatches), decisions.size());
  std::printf("stale-served decisions: %llu (of %llu cache-served)\n",
              static_cast<unsigned long long>(stale_served),
              static_cast<unsigned long long>(cache_served));
  bool ok = mismatches == 0 && stale_served == 0 &&
            decisions.size() == pumped && (!can_swap_midstream || swaps >= 3);

  // --- replicated run: N replicas on N scheduler threads ------------------
  // Same config text, replicated: replica 0 trains, the rest adopt its
  // engine; the RSS split partitions the capture by flow. The merged
  // records must be IDENTICAL to the scalar run's, index for index.
  if (n_threads > 1) {
    std::printf("\nreplicated run: %zu replicas on %zu scheduler threads\n",
                n_threads, n_threads);
    // A pipeline.* failpoint armed via NM_FAILPOINTS turns this run into a
    // fault drill: supervise with quarantine/rejoin instead of fail-stop,
    // so the injected crash exercises the recovery ladder and the
    // differential below proves it lossless. CI smoke runs exactly this.
    bool fault_drill = false;
    for (const std::string& p : failpoint::armed_points())
      fault_drill |= p.rfind("pipeline.", 0) == 0;
    pipeline::ReplicatedGraph rg = pipeline::ReplicatedGraph::parse(
        config, static_cast<uint32_t>(n_threads));
    pipeline::ReplicatedRunOptions ropts;
    ropts.threads = n_threads;
    if (fault_drill) {
      ropts.policy = pipeline::SupervisorPolicy::kQuarantine;
      std::printf("fault drill: pipeline failpoint armed — supervising with "
                  "quarantine + rejoin\n");
    }
    const uint64_t rpumped = rg.run(ropts);
    const std::vector<pipeline::Sink::Record> merged = rg.merged_records();

    uint64_t diverged = 0;
    if (merged.size() != decisions.size()) {
      diverged = merged.size() > decisions.size() ? merged.size() - decisions.size()
                                                  : decisions.size() - merged.size();
    } else {
      // Compare the DECISION, not Record::cached: which lane a replica's
      // private cache happens to serve differs from the scalar run by
      // construction and is not a divergence.
      for (size_t i = 0; i < merged.size(); ++i) {
        if (merged[i].index != decisions[i].index ||
            merged[i].rule_id != decisions[i].rule_id ||
            merged[i].action != decisions[i].action)
          ++diverged;
      }
    }
    const pipeline::SchedulerStats& st = rg.last_stats();
    std::printf("replica fires per thread:");
    for (const uint64_t f : st.fires_per_thread)
      std::printf(" %llu", static_cast<unsigned long long>(f));
    std::printf("  (steals: %llu)\n",
                static_cast<unsigned long long>(st.steals));
    std::printf("replica differential: %llu divergences over %zu merged "
                "records (%llu packets)\n",
                static_cast<unsigned long long>(diverged), merged.size(),
                static_cast<unsigned long long>(rpumped));

    // Supervision report: what the run's fault domains actually absorbed.
    // Stale-served here = a cache-served merged record whose decision
    // diverges from the oracle — the recovery drill must drain the dead
    // replica's cache, so this stays 0 through quarantine and rejoin.
    const pipeline::PipelineHealth ph = rg.health();
    uint64_t rstale = 0;
    for (const auto& r : merged) {
      if (r.cached && oracle.match((*packets)[r.index]).rule_id != r.rule_id)
        ++rstale;
    }
    for (size_t i = 0; i < ph.replicas.size(); ++i) {
      const pipeline::ReplicaHealth& rh = ph.replicas[i];
      if (rh.quarantines == 0) continue;
      std::printf("replica %zu quarantined (drained %llu cache entries, "
                  "recovery %llu us)%s, %llu stale-served\n",
                  i, static_cast<unsigned long long>(rh.drained_entries),
                  static_cast<unsigned long long>(ph.recovery_ns / 1000),
                  rh.state == pipeline::ReplicaHealth::State::kRejoined
                      ? ", rejoined"
                      : " and stayed down",
                  static_cast<unsigned long long>(rstale));
    }
    if (fault_drill) std::printf("runtime health:\n%s", ph.to_string().c_str());

    ok = ok && diverged == 0 && rpumped == pumped && rstale == 0;
  }

  // --- final telemetry snapshot -------------------------------------------
  // Joins the process-wide registry (hot-path event counters + latency
  // histograms) with the engine's health surface and the scalar run's
  // flow-cache stats. CI greps this output for nm_flowcache_hits_total.
  if (metrics) {
    const EngineHealth eh = online->health();
    telemetry::Snapshot snap = telemetry::capture(&eh);
    if (auto* fc = graph.find_kind<pipeline::FlowCacheElement>()) {
      snap.cache = fc->cache().stats();
      snap.cache_entries = fc->cache().size();
      snap.cache_capacity = fc->cache().capacity();
    }
    const bool to_file = !metrics_arg.empty() && !metrics_port;
    if (to_file) {
      const bool json = metrics_arg.size() > 5 &&
                        metrics_arg.rfind(".json") == metrics_arg.size() - 5;
      std::ofstream out{metrics_arg};
      out << (json ? snap.to_json() : snap.to_prometheus());
      std::printf("\ntelemetry snapshot written to %s (%s)\n",
                  metrics_arg.c_str(), json ? "json" : "prometheus");
    } else {
      std::printf("\n--- telemetry snapshot (prometheus) ---\n%s",
                  snap.to_prometheus().c_str());
    }
  }

  std::printf("%s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
