// Online rule updates scenario (paper §3.9): an SDN controller pushes rule
// changes while traffic flows. Deletions tombstone iSet entries; additions
// land in the updatable TupleMerge remainder; throughput degrades as the
// remainder grows, and a rebuild() (retraining) restores it — the Figure 7
// sawtooth, live.
//
//   $ ./online_updates [n_rules]        (default 30000)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "classbench/generator.hpp"
#include "common/rng.hpp"
#include "nuevomatch/nuevomatch.hpp"
#include "trace/trace.hpp"
#include "tuplemerge/tuplemerge.hpp"

using namespace nuevomatch;

namespace {

double mpps(const Classifier& cls, const std::vector<Packet>& trace) {
  int64_t sink = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (const Packet& p : trace) sink += cls.match(p).rule_id;
  const auto t1 = std::chrono::steady_clock::now();
  static volatile int64_t g_sink; g_sink = sink; (void)g_sink;
  return static_cast<double>(trace.size()) * 1e3 /
         static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
}

}  // namespace

int main(int argc, char** argv) {
  const size_t n = argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 30'000;
  const RuleSet rules = generate_classbench(AppClass::kFw, 1, n, 5);
  TraceConfig tc;
  tc.n_packets = 120'000;
  const auto trace = generate_trace(rules, tc);

  NuevoMatchConfig cfg;
  cfg.remainder_factory = [] { return std::make_unique<TupleMerge>(); };
  cfg.min_iset_coverage = 0.05;
  NuevoMatch nm{cfg};
  nm.build(rules);
  std::printf("built: %zu rules, coverage %.1f%%, remainder %zu\n", nm.size(),
              nm.coverage() * 100, nm.remainder_size());

  Rng rng{7};
  std::printf("\n%-8s %-10s %10s %12s %10s\n", "batch", "updates", "Mpps", "remainder",
              "pressure");
  const size_t batch = n / 50;
  size_t total_updates = 0;
  for (int round = 1; round <= 6; ++round) {
    // Controller pushes a batch of matching-set changes (delete + insert).
    for (size_t i = 0; i < batch; ++i) {
      const auto victim = static_cast<uint32_t>(rng.below(rules.size()));
      Rule moved = rules[victim];
      if (!nm.erase(victim)) continue;
      moved.field[kSrcPort] = Range{1024, 65535};
      nm.insert(moved);
      ++total_updates;
    }
    std::printf("%-8d %-10zu %10.2f %12zu %9.1f%%\n", round, total_updates,
                mpps(nm, trace), nm.remainder_size(), nm.update_pressure() * 100);

    if (nm.update_pressure() > 0.08) {  // the paper's periodic retraining policy
      const auto t0 = std::chrono::steady_clock::now();
      nm.rebuild();
      const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
      std::printf("  -> retrained in %lld ms; coverage %.1f%%, remainder back to %zu\n",
                  static_cast<long long>(ms), nm.coverage() * 100, nm.remainder_size());
    }
  }
  std::printf("\nevery lookup stayed exact throughout (see tests/test_updates.cpp)\n");
  return 0;
}
