// Online rule updates (paper §3.9, "Handling rule-set updates"): an SDN
// controller pushes rule changes while traffic flows. OnlineNuevoMatch
// absorbs additions into its copy-on-write update layer, tombstones iSet
// deletions in place (atomic flips), and — when the absorption ratio
// crosses the configured threshold — retrains the RQ-RMI index on a
// background thread (reusing trained models for unchanged iSets) and
// atomically swaps it in. Lookups never stop AND never lock: the read path
// is wait-free between swaps (epoch-pinned, see DESIGN.md "Update path"),
// so neither a controller burst nor the retrain ever stalls the data path —
// and saturated lookups can no longer starve the controller either.
//
// The controller pushes each round as ONE erase_batch + ONE insert_batch:
// a burst costs one writer-lock hold and one copy-on-write commit total,
// not one per rule. Lookups are served two ways at once: scalar match()
// calls AND the online BatchParallelEngine (per-batch generation pinning) —
// the multi-core serving path.
//
//   $ ./online_updates [n_rules]        (default 30000)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <unordered_set>
#include <vector>

#include "classbench/generator.hpp"
#include "common/rng.hpp"
#include "nuevomatch/online.hpp"
#include "nuevomatch/parallel.hpp"
#include "trace/trace.hpp"
#include "tuplemerge/tuplemerge.hpp"

using namespace nuevomatch;

namespace {

double mpps(const Classifier& cls, const std::vector<Packet>& trace) {
  int64_t sink = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (const Packet& p : trace) sink += cls.match(p).rule_id;
  const auto t1 = std::chrono::steady_clock::now();
  static volatile int64_t g_sink; g_sink = sink; (void)g_sink;
  return static_cast<double>(trace.size()) * 1e3 /
         static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
}

/// Same trace through the online parallel engine, kDefaultBatchSize a time.
double mpps_parallel(BatchParallelEngine& engine, const std::vector<Packet>& trace) {
  std::vector<MatchResult> out(trace.size());
  const auto t0 = std::chrono::steady_clock::now();
  for (size_t off = 0; off < trace.size(); off += kDefaultBatchSize) {
    const size_t len = std::min(kDefaultBatchSize, trace.size() - off);
    engine.classify({trace.data() + off, len}, {out.data() + off, len});
  }
  const auto t1 = std::chrono::steady_clock::now();
  static volatile int64_t g_sink;
  int64_t sink = 0;
  for (const MatchResult& r : out) sink += r.rule_id;
  g_sink = sink; (void)g_sink;
  return static_cast<double>(trace.size()) * 1e3 /
         static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
}

}  // namespace

int main(int argc, char** argv) {
  const size_t n = argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 30'000;
  const RuleSet rules = generate_classbench(AppClass::kFw, 1, n, 5);
  TraceConfig tc;
  tc.n_packets = 120'000;
  const auto trace = generate_trace(rules, tc);

  OnlineConfig cfg;
  cfg.base.remainder_factory = [] { return std::make_unique<TupleMerge>(); };
  cfg.base.min_iset_coverage = 0.05;
  cfg.retrain_threshold = 0.08;  // retrain when 8% of rules have migrated
  cfg.update_shards = 4;         // multi-writer update path (one here, but
                                 // the journal/swap machinery is identical)
  OnlineNuevoMatch nm{cfg};
  nm.build(rules);
  std::printf("built: %zu rules, generation %llu, %d update shards\n", nm.size(),
              static_cast<unsigned long long>(nm.generations()), nm.update_shards());

  // The multi-core serving path: per-batch generation pinning means this
  // engine keeps answering at full speed across every swap below.
  BatchParallelEngine engine{nm};

  Rng rng{7};
  std::printf("\n%-8s %-10s %10s %10s %12s %10s %6s\n", "batch", "updates", "Mpps",
              "par Mpps", "absorption", "retrain?", "gen");
  const size_t batch = n / 50;
  size_t total_updates = 0;
  uint32_t next_id = 1'000'000;
  std::unordered_set<uint32_t> gone;  // victims of earlier rounds
  for (int round = 1; round <= 8; ++round) {
    // Controller pushes a round of matching-set changes as two batched
    // commits: erase_batch the victims, insert_batch the rewritten rules.
    // The inserts are absorbed by the update layer; when absorption crosses
    // the threshold the background retrain kicks in BY ITSELF — note how
    // the lookup loop below keeps running at full speed while it trains.
    std::vector<uint32_t> victims;
    victims.reserve(batch);
    for (size_t i = 0; i < batch; ++i) {
      const auto v = static_cast<uint32_t>(rng.below(rules.size()));
      if (gone.insert(v).second) victims.push_back(v);  // fresh victims only
    }
    std::vector<Rule> moved;
    moved.reserve(victims.size());
    for (const uint32_t v : victims) {
      Rule r = rules[v];
      r.field[kSrcPort] = Range{1024, 65535};
      r.id = next_id++;  // new identity for the changed matching set
      moved.push_back(r);
    }
    total_updates += nm.erase_batch(victims) + nm.insert_batch(moved);
    std::printf("%-8d %-10zu %10.2f %10.2f %11.1f%% %10s %6llu\n", round,
                total_updates, mpps(nm, trace), mpps_parallel(engine, trace),
                nm.absorption() * 100, nm.retrain_in_progress() ? "bg" : "-",
                static_cast<unsigned long long>(nm.generations()));
  }

  nm.quiesce();
  std::printf("\nquiesced: generation %llu, absorption %.1f%%, %10.2f Mpps "
              "(%.2f parallel)\n",
              static_cast<unsigned long long>(nm.generations()),
              nm.absorption() * 100, mpps(nm, trace), mpps_parallel(engine, trace));
  std::printf("every lookup stayed exact throughout (see tests/test_updates.cpp "
              "and tests/test_churn.cpp)\n");
  return 0;
}
