// Quickstart: build a NuevoMatch classifier over a small hand-written
// rule-set (the paper's Figure 2) and classify a packet.
//
//   $ ./quickstart
//
// Walks through the whole public API surface: rules -> build -> match,
// plus the introspection calls (coverage, memory, search error).
#include <cstdio>
#include <memory>

#include "common/prefix.hpp"
#include "nuevomatch/nuevomatch.hpp"
#include "tuplemerge/tuplemerge.hpp"

using namespace nuevomatch;

int main() {
  // --- 1. Describe rules (Figure 2 of the paper) --------------------------
  // Fields: src IP, dst IP, src port, dst port, protocol. Lower priority
  // value wins. prefix_to_range converts "10.10.0.0/16"-style prefixes.
  RuleSet rules(5);
  auto set_rule = [&](size_t i, Range dst_ip, Range dst_port) {
    for (int f = 0; f < kNumFields; ++f) rules[i].field[static_cast<size_t>(f)] = full_range(f);
    rules[i].field[kDstIp] = dst_ip;
    rules[i].field[kDstPort] = dst_port;
  };
  set_rule(0, prefix_to_range(*parse_ipv4("10.10.0.0"), 16), Range{10, 18});
  set_rule(1, prefix_to_range(*parse_ipv4("10.10.1.0"), 24), Range{15, 25});
  set_rule(2, prefix_to_range(*parse_ipv4("10.0.0.0"), 8), Range{5, 8});
  set_rule(3, prefix_to_range(*parse_ipv4("10.10.3.0"), 24), Range{7, 20});
  set_rule(4, prefix_to_range(*parse_ipv4("10.10.3.100"), 32), Range{19, 19});
  canonicalize(rules);  // id = priority = position

  // --- 2. Build NuevoMatch ------------------------------------------------
  // NuevoMatch accelerates an existing classifier: pick the remainder
  // backend via the factory. TupleMerge also gives O(1) rule updates.
  NuevoMatchConfig cfg;
  cfg.remainder_factory = [] { return std::make_unique<TupleMerge>(); };
  cfg.min_iset_coverage = 0.05;
  NuevoMatch nm{cfg};
  nm.build(rules);

  // --- 3. Classify ---------------------------------------------------------
  Packet p;
  p.field[kDstIp] = *parse_ipv4("10.10.3.100");
  p.field[kDstPort] = 19;
  p.field[kProto] = 6;
  const MatchResult r = nm.match(p);
  std::printf("packet 10.10.3.100:19 -> rule R%d (priority %d)\n", r.rule_id,
              r.priority);
  // The paper's Figure 2: R3 and R4 both match; R3 wins on priority.

  // --- 4. Introspect -------------------------------------------------------
  std::printf("iSets: %zu, coverage %.0f%%, remainder %zu rules\n", nm.isets().size(),
              nm.coverage() * 100.0, nm.remainder_size());
  std::printf("index memory: %zu bytes, worst-case search distance: %u\n",
              nm.memory_bytes(), nm.max_search_error());
  return r.rule_id == 3 ? 0 : 1;
}
