// IP forwarding scenario (paper Figure 10): longest-prefix-match forwarding
// on a Stanford-backbone-style table with ~180K destination prefixes. LPM is
// expressible as priority matching — longer prefixes get higher priority —
// so the same NuevoMatch engine serves as a FIB accelerator.
//
//   $ ./lpm_forwarding [n_rules]        (default 60000)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "classbench/stanford.hpp"
#include "common/prefix.hpp"
#include "nuevomatch/nuevomatch.hpp"
#include "trace/trace.hpp"
#include "tuplemerge/tuplemerge.hpp"

using namespace nuevomatch;

int main(int argc, char** argv) {
  const size_t n = argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 60'000;
  RuleSet fib = generate_stanford_like(1, n, 11);

  // LPM semantics: longer prefix wins. Sort by descending prefix length and
  // re-number so priority order == specificity order.
  std::sort(fib.begin(), fib.end(), [](const Rule& a, const Rule& b) {
    return a.field[kDstIp].span() < b.field[kDstIp].span();
  });
  canonicalize(fib);

  NuevoMatchConfig cfg;
  cfg.remainder_factory = [] { return std::make_unique<TupleMerge>(); };
  cfg.min_iset_coverage = 0.05;
  cfg.max_isets = 4;
  NuevoMatch nm{cfg};
  nm.build(fib);

  TupleMerge tm;
  tm.build(fib);

  TraceConfig tc;
  tc.n_packets = 200'000;
  const auto trace = generate_trace(fib, tc);

  const auto measure = [&](const Classifier& cls) {
    int64_t sink = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (const Packet& p : trace) sink += cls.match(p).rule_id;
    const auto t1 = std::chrono::steady_clock::now();
    static volatile int64_t g_sink; g_sink = sink; (void)g_sink;
    return static_cast<double>(trace.size()) * 1e3 /
           static_cast<double>(
               std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  };

  std::printf("FIB: %zu prefixes; nm coverage %.1f%% in %zu iSets\n", fib.size(),
              nm.coverage() * 100, nm.isets().size());
  const double tm_mpps = measure(tm);
  const double nm_mpps = measure(nm);
  std::printf("%-24s %10.2f Mpps  (index %zu bytes)\n", "tuplemerge FIB", tm_mpps,
              tm.memory_bytes());
  std::printf("%-24s %10.2f Mpps  (index %zu bytes)\n", nm.name().c_str(), nm_mpps,
              nm.memory_bytes());
  std::printf("speedup %.2fx, compression %.1fx  (paper Fig. 10: 3.5x / ~29x)\n",
              nm_mpps / tm_mpps,
              static_cast<double>(tm.memory_bytes()) /
                  static_cast<double>(nm.memory_bytes()));

  // Sanity: LPM answer for one address, cross-checked against a scan.
  const Packet probe = representative_packets(fib, 3)[fib.size() / 2];
  const MatchResult got = nm.match(probe);
  std::printf("probe %s -> rule %d (longest matching prefix)\n",
              format_ipv4(probe[kDstIp]).c_str(), got.rule_id);
  return 0;
}
